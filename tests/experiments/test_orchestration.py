"""Tests for the orchestration engine: tasks, backends, result cache."""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

import repro.experiments.engine as engine_mod
from repro.core import get_scheduler, register
from repro.experiments import (
    Experiment,
    ResultCache,
    build_figure,
    execute_tasks,
    generate_tasks,
    resolve_backend,
    resolve_workers,
    run_experiment,
    spec_fingerprint,
)
from repro.machine import taihulight
from repro.types import ModelError
from repro.workloads import npb_synth

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")


def _factory(point, rng):
    return npb_synth(max(1, int(point)), rng), taihulight()


def _make_factory(napps):
    def factory(point, rng):
        return npb_synth(napps, rng), taihulight()

    return factory


def _exp(**kw):
    base = dict(
        experiment_id="t",
        title="test",
        xlabel="n",
        points=np.array([2.0, 4.0]),
        factory=_factory,
        schedulers=("randompart", "dominant-random", "fair"),
        reps=2,
        seed=7,
    )
    base.update(kw)
    return Experiment(**base)


def _assert_identical(a, b):
    assert tuple(a.data) == tuple(b.data)
    for name in a.data:
        for metric in a.data[name]:
            assert np.array_equal(a.data[name][metric], b.data[name][metric]), (
                name, metric)


class TestTaskGeneration:
    def test_grid_flattening(self):
        exp = _exp()
        tasks = generate_tasks(exp)
        assert len(tasks) == exp.reps * exp.points.size * len(exp.schedulers)
        coords = {(t.rep, t.point_index, t.scheduler) for t in tasks}
        assert len(coords) == len(tasks)

    def test_schedulers_share_instance_seed_per_cell(self):
        tasks = generate_tasks(_exp())
        by_cell = {}
        for t in tasks:
            by_cell.setdefault((t.rep, t.point_index), set()).add(
                t.instance_seed.entropy)
        assert all(len(seeds) == 1 for seeds in by_cell.values())

    def test_scheduler_seeds_independent(self):
        tasks = generate_tasks(_exp())
        keys = {(t.scheduler_seed.entropy, t.scheduler_seed.spawn_key)
                for t in tasks}
        assert len(keys) == len(tasks)

    def test_order_independent_evaluation(self):
        """Tasks are self-describing: shuffled execution, same floats."""
        exp = _exp()
        tasks = generate_tasks(exp)
        forward = execute_tasks(exp, tasks, backend="serial")
        perm = np.random.default_rng(0).permutation(len(tasks))
        shuffled = execute_tasks(exp, [tasks[i] for i in perm], backend="serial")
        for pos, i in enumerate(perm):
            assert forward[i] == shuffled[pos]


class TestBackendResolution:
    def test_default_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_backend(None, _exp()) == "serial"

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "process")
        assert resolve_backend(None, _exp()) == "process"

    def test_experiment_field_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "process")
        assert resolve_backend(None, _exp(backend="serial")) == "serial"

    def test_argument_beats_field(self):
        assert resolve_backend("serial", _exp(backend="process")) == "serial"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ModelError):
            resolve_backend("threads", _exp())
        with pytest.raises(ModelError):
            run_experiment(_exp(backend="threads"))

    def test_workers_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(None) == 3
        assert resolve_workers(2) == 2
        with pytest.raises(ModelError):
            resolve_workers(0)


@needs_fork
class TestProcessBackend:
    def test_bit_identical_to_serial_randomized(self):
        """The acceptance bar: randomized heuristics included, the
        process backend reproduces the serial arrays bit for bit."""
        exp = _exp()
        serial = run_experiment(exp, backend="serial", use_cache=False)
        procs = run_experiment(exp, backend="process", workers=2,
                               use_cache=False)
        _assert_identical(serial, procs)

    def test_backend_recorded_in_meta(self):
        res = run_experiment(_exp(reps=1), backend="process", workers=2,
                             use_cache=False)
        assert res.meta["backend"] == "process"

    def test_progress_reports_completion(self):
        messages = []
        run_experiment(_exp(), backend="process", workers=2, use_cache=False,
                       progress=messages.append)
        assert messages and "tasks done" in messages[-1]

    def test_real_figure_parity(self):
        exp = build_figure("fig6", reps=2, points=np.array([0.0, 0.05]))
        serial = run_experiment(exp, backend="serial", use_cache=False)
        procs = run_experiment(exp, backend="process", workers=2,
                               use_cache=False)
        _assert_identical(serial, procs)


class TestResultCache:
    def _counting_scheduler(self):
        calls = []
        fair = get_scheduler("fair")

        def counting(wl, pf, rng=None):
            calls.append(1)
            return fair(wl, pf, rng)

        register("counting-sched", counting, overwrite=True)
        return calls

    def test_hit_skips_recomputation(self, tmp_path):
        calls = self._counting_scheduler()
        exp = _exp(schedulers=("counting-sched",))
        first = run_experiment(exp, cache_dir=tmp_path)
        assert len(calls) == exp.reps * exp.points.size
        second = run_experiment(exp, cache_dir=tmp_path)
        assert len(calls) == exp.reps * exp.points.size  # no new invocations
        _assert_identical(first, second)
        assert second.meta["seed"] == exp.seed

    def test_spec_change_invalidates(self, tmp_path):
        calls = self._counting_scheduler()
        base = dict(schedulers=("counting-sched",))
        run_experiment(_exp(**base), cache_dir=tmp_path)
        baseline = len(calls)
        for changed in (
            _exp(seed=8, **base),
            _exp(reps=3, **base),
            _exp(points=np.array([2.0, 8.0]), **base),
            _exp(factory=_make_factory(3), **base),
        ):
            before = len(calls)
            run_experiment(changed, cache_dir=tmp_path)
            assert len(calls) > before, "spec change must recompute"
        assert baseline < len(calls)

    def test_fingerprint_sees_closure_values(self):
        a = _exp(factory=_make_factory(4))
        b = _exp(factory=_make_factory(8))
        assert spec_fingerprint(a) != spec_fingerprint(b)
        assert spec_fingerprint(a) == spec_fingerprint(_exp(factory=_make_factory(4)))

    def test_scheduler_code_change_invalidates(self):
        """Editing (re-registering) a scheduler must change the key, or
        a warm cache would silently serve pre-fix arrays."""
        fair = get_scheduler("fair")
        zero = get_scheduler("0cache")
        register("mut-sched", lambda wl, pf, rng=None: fair(wl, pf, rng),
                 overwrite=True)
        exp = _exp(schedulers=("mut-sched",))
        before = spec_fingerprint(exp)
        register("mut-sched", lambda wl, pf, rng=None: zero(wl, pf, rng),
                 overwrite=True)
        assert spec_fingerprint(exp) != before

    def test_metric_code_change_invalidates(self):
        a = _exp(metrics={"makespan": lambda s: s.makespan()})
        b = _exp(metrics={"makespan": lambda s: s.makespan() * 2.0})
        assert spec_fingerprint(a) != spec_fingerprint(b)

    def test_unwritable_store_keeps_result(self, tmp_path):
        """A cache-store failure costs the entry, not the computed run."""
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        exp = _exp(schedulers=("fair",))
        with pytest.warns(RuntimeWarning, match="result cache"):
            result = run_experiment(exp, cache_dir=blocker)
        assert result.samples("fair").shape == (exp.reps, exp.points.size)

    def test_fingerprint_sees_schedulers_and_metrics(self):
        a = _exp()
        assert spec_fingerprint(a) != spec_fingerprint(_exp(schedulers=("fair",)))
        assert spec_fingerprint(a) != spec_fingerprint(
            _exp(metrics={"makespan": lambda s: s.makespan(),
                          "nprocs": lambda s: float(s.procs.sum())}))

    def test_use_cache_false_bypasses(self, tmp_path):
        calls = self._counting_scheduler()
        exp = _exp(schedulers=("counting-sched",))
        run_experiment(exp, cache_dir=tmp_path)
        before = len(calls)
        run_experiment(exp, cache_dir=tmp_path, use_cache=False)
        assert len(calls) == 2 * before

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        exp = _exp(schedulers=("fair",))
        cache = ResultCache(tmp_path)
        first = run_experiment(exp, cache_dir=tmp_path)
        cache.path_for(exp).write_bytes(b"not an npz")
        second = run_experiment(exp, cache_dir=tmp_path)
        _assert_identical(first, second)

    def test_env_var_enables_cache(self, tmp_path, monkeypatch):
        calls = self._counting_scheduler()
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        exp = _exp(schedulers=("counting-sched",))
        run_experiment(exp)
        before = len(calls)
        run_experiment(exp)
        assert len(calls) == before
        assert list(tmp_path.glob("t-*.npz"))

    def test_repartition_metrics_roundtrip(self, tmp_path):
        """Multi-metric results (Figs. 7/17) survive the npz round trip."""
        exp = build_figure("fig7", reps=1, points=np.array([2.0]))
        first = run_experiment(exp, cache_dir=tmp_path)
        second = run_experiment(exp, cache_dir=tmp_path)
        _assert_identical(first, second)
        assert set(second.data["fair"]) == set(exp.metrics)

    def test_warm_cache_figure_counts_invocations(self, tmp_path, monkeypatch):
        """Acceptance criterion: a warm-cache figure rerun invokes no
        scheduler at all (counted through the engine's entry lookup)."""
        exp = build_figure("fig1", reps=1, points=np.array([2.0]))
        lookups = []
        real = engine_mod.get_entry

        def counted(name):
            lookups.append(name)
            return real(name)

        monkeypatch.setattr(engine_mod, "get_entry", counted)
        run_experiment(exp, cache_dir=tmp_path)
        assert lookups  # cold run did schedule
        lookups.clear()
        run_experiment(exp, cache_dir=tmp_path)
        assert lookups == []  # warm run touched no scheduler
