"""Tests for the experiment result container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import ExperimentResult
from repro.types import ModelError


@pytest.fixture
def result():
    x = np.array([1.0, 2.0, 4.0])
    data = {
        "ref": {"makespan": np.array([[10.0, 20.0, 40.0], [12.0, 22.0, 44.0]])},
        "half": {"makespan": np.array([[5.0, 10.0, 20.0], [6.0, 11.0, 22.0]])},
    }
    return ExperimentResult(
        experiment_id="figX", title="demo", xlabel="n", x=x, data=data,
    )


class TestAccess:
    def test_schedulers_and_reps(self, result):
        assert result.schedulers == ("ref", "half")
        assert result.reps == 2

    def test_mean(self, result):
        assert np.allclose(result.mean("ref"), [11.0, 21.0, 42.0])

    def test_spread(self, result):
        lo, mean, hi = result.spread("half")
        assert np.allclose(lo, [5.0, 10.0, 20.0])
        assert np.allclose(hi, [6.0, 11.0, 22.0])

    def test_unknown_scheduler(self, result):
        with pytest.raises(ModelError):
            result.samples("nobody")

    def test_unknown_metric(self, result):
        with pytest.raises(ModelError):
            result.samples("ref", "latency")


class TestNormalization:
    def test_per_rep_ratio(self, result):
        norm = result.normalized(by="ref")
        assert np.allclose(norm["ref"], 1.0)
        assert np.allclose(norm["half"], 0.5)

    def test_ratio_of_means_differs(self):
        """Per-rep normalization is not the ratio of the means."""
        x = np.array([1.0])
        data = {
            "a": {"makespan": np.array([[1.0], [100.0]])},
            "b": {"makespan": np.array([[2.0], [100.0]])},
        }
        res = ExperimentResult("f", "t", "x", x, data)
        norm = res.normalized(by="a")["b"]
        assert norm[0] == pytest.approx((2.0 / 1.0 + 100.0 / 100.0) / 2)


class TestRowsAndCsv:
    def test_to_rows_raw(self, result):
        header, rows = result.to_rows()
        assert header == ["n", "ref", "half"]
        assert rows[0] == [1.0, 11.0, 5.5]

    def test_to_rows_normalized(self, result):
        header, rows = result.to_rows(normalize_by="ref")
        assert rows[2][2] == pytest.approx(0.5)

    def test_csv_roundtrip(self, result, tmp_path):
        path = tmp_path / "out.csv"
        result.to_csv(path, normalize_by="ref")
        header, rows = ExperimentResult.read_csv(path)
        assert header == ["n", "ref", "half"]
        assert rows.shape == (3, 3)
        assert rows[:, 2] == pytest.approx(0.5)
