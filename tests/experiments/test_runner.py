"""Tests for the experiment runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import Experiment, run_experiment
from repro.machine import taihulight
from repro.types import ModelError
from repro.workloads import npb_synth


def _factory(point, rng):
    return npb_synth(max(1, int(point)), rng), taihulight()


def _exp(**kw):
    base = dict(
        experiment_id="t",
        title="test",
        xlabel="n",
        points=np.array([2.0, 4.0]),
        factory=_factory,
        schedulers=("dominant-minratio", "0cache"),
        reps=2,
        seed=7,
    )
    base.update(kw)
    return Experiment(**base)


class TestExperimentValidation:
    def test_valid(self):
        assert _exp().points.tolist() == [2.0, 4.0]

    def test_rejects_empty_points(self):
        with pytest.raises(ModelError):
            _exp(points=np.array([]))

    def test_rejects_zero_reps(self):
        with pytest.raises(ModelError):
            _exp(reps=0)

    def test_rejects_no_schedulers(self):
        with pytest.raises(ModelError):
            _exp(schedulers=())


class TestRunner:
    def test_shapes(self):
        res = run_experiment(_exp())
        assert res.x.tolist() == [2.0, 4.0]
        assert res.samples("0cache").shape == (2, 2)

    def test_reproducible(self):
        a = run_experiment(_exp())
        b = run_experiment(_exp())
        assert np.allclose(a.samples("dominant-minratio"),
                           b.samples("dominant-minratio"))

    def test_seed_changes_results(self):
        a = run_experiment(_exp(seed=1))
        b = run_experiment(_exp(seed=2))
        assert not np.allclose(a.samples("0cache"), b.samples("0cache"))

    def test_same_instances_across_schedulers(self):
        """Adding a scheduler must not change the others' samples."""
        few = run_experiment(_exp(schedulers=("0cache",)))
        more = run_experiment(_exp(schedulers=("0cache", "fair")))
        assert np.allclose(few.samples("0cache"), more.samples("0cache"))

    def test_custom_metrics(self):
        exp = _exp(metrics={"makespan": lambda s: s.makespan(),
                            "nprocs": lambda s: float(s.procs.sum())})
        res = run_experiment(exp)
        assert np.allclose(res.samples("0cache", "nprocs"), 256.0, rtol=1e-6)

    def test_progress_callback(self):
        messages = []
        run_experiment(_exp(), progress=messages.append)
        assert len(messages) == 2  # one per rep

    def test_meta_recorded(self):
        res = run_experiment(_exp())
        assert res.meta["reps"] == 2
        assert res.meta["seed"] == 7
