"""Tests for the Table-2 regeneration pipeline."""

from __future__ import annotations

import pytest

from repro.experiments import regenerate_table2
from repro.workloads import NPB_TABLE2


@pytest.fixture(scope="module")
def profiled():
    # Short traces keep the test quick; the bench uses the full length.
    return regenerate_table2(trace_length=40_000, cache_points=8)


class TestRegenerateTable2:
    def test_all_six_benchmarks(self, profiled):
        assert [b.name for b in profiled] == list(NPB_TABLE2)

    def test_paper_constants_carried(self, profiled):
        for b in profiled:
            w, f, m = NPB_TABLE2[b.name]
            assert b.paper_work == w
            assert b.paper_freq == f
            assert b.paper_miss == m

    def test_apps_inherit_work_and_freq(self, profiled):
        for b in profiled:
            assert b.app.work == b.paper_work
            assert b.app.access_freq == pytest.approx(b.paper_freq)

    def test_miss_rates_in_measured_regime(self, profiled):
        """Simulated m40MB lands in the paper's small-rate regime."""
        for b in profiled:
            assert 0.0 < b.app.miss_rate < 0.1, b.name

    def test_fits_have_positive_alpha(self, profiled):
        for b in profiled:
            assert b.fit_alpha > 0.0, b.name

    def test_profiled_workload_schedulable(self, profiled):
        from repro.core import Workload, dominant_schedule
        from repro.machine import taihulight

        wl = Workload([b.app for b in profiled])
        sched = dominant_schedule(wl, taihulight())
        assert sched.is_feasible()
