"""Tests for text table rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import ExperimentResult, format_table, render_result
from repro.types import ModelError


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bb"], [[1.0, 2.5], [10.0, 0.25]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_integer_formatting(self):
        out = format_table(["n"], [[256.0]])
        assert "256" in out and "256.0000" not in out

    def test_scientific_for_extremes(self):
        out = format_table(["v"], [[1.5e9]])
        assert "e+09" in out

    def test_string_cells_passthrough(self):
        out = format_table(["app", "w"], [["CG", 5.7e10]])
        assert "CG" in out

    def test_empty_header_rejected(self):
        with pytest.raises(ModelError):
            format_table([], [])

    def test_row_width_mismatch(self):
        with pytest.raises(ModelError):
            format_table(["a", "b"], [[1.0]])


class TestRenderResult:
    def test_contains_title_and_series(self):
        res = ExperimentResult(
            "figX", "demo title", "n", np.array([1.0]),
            {"s1": {"makespan": np.array([[2.0]])}},
        )
        out = render_result(res)
        assert "figX" in out and "demo title" in out and "s1" in out

    def test_normalized_annotation(self):
        res = ExperimentResult(
            "figX", "demo", "n", np.array([1.0]),
            {"s1": {"makespan": np.array([[2.0]])}},
        )
        out = render_result(res, normalize_by="s1")
        assert "normalized by s1" in out
