"""Tests for the SLSQP continuous optimizer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import dominant_schedule, get_scheduler
from repro.core.dominance import optimal_cache_fractions
from repro.core.processor_allocation import equal_finish_makespan
from repro.extensions import continuous_schedule, optimize_fractions
from repro.machine import taihulight
from repro.workloads import npb_synth


@pytest.fixture
def pf():
    return taihulight()


class TestOptimizeFractions:
    def test_feasible_output(self, synth16, pf):
        x = optimize_fractions(synth16, pf)
        assert np.all(x >= 0)
        assert x.sum() <= 1 + 1e-9

    def test_never_worse_than_warm_start(self, synth16, pf):
        mask = np.ones(16, dtype=bool)
        warm = optimal_cache_fractions(synth16, pf, mask)
        x = optimize_fractions(synth16, pf, x0=warm)
        k_warm = equal_finish_makespan(synth16, pf, warm)
        k_opt = equal_finish_makespan(synth16, pf, x)
        assert k_opt <= k_warm * (1 + 1e-12)

    def test_recovers_theorem3_perfectly_parallel(self, npb6_pp, pf):
        """For s=0, Theorem 3 is the global optimum; SLSQP cannot beat it."""
        x_t3 = optimal_cache_fractions(npb6_pp, pf, np.ones(6, dtype=bool))
        x = optimize_fractions(npb6_pp, pf)
        k_t3 = equal_finish_makespan(npb6_pp, pf, x_t3)
        k = equal_finish_makespan(npb6_pp, pf, x)
        assert k == pytest.approx(k_t3, rel=1e-6)

    def test_matches_speedup_aware_fixed_point(self, pf):
        """Two independent derivations of the same optimum must agree."""
        from repro.core.heuristics import dominant_partition
        from repro.extensions import speedup_aware_fractions

        wl = npb_synth(12, np.random.default_rng(5), seq_range=(0.0, 0.3))
        mask = dominant_partition(wl, pf, "minratio")
        x_kkt = speedup_aware_fractions(wl, pf, mask)
        x_slsqp = optimize_fractions(wl, pf, x0=x_kkt)
        k_kkt = equal_finish_makespan(wl, pf, x_kkt)
        k_slsqp = equal_finish_makespan(wl, pf, x_slsqp)
        assert k_slsqp == pytest.approx(k_kkt, rel=1e-4)


class TestSchedule:
    def test_never_worse_than_dominant(self, pf):
        for seed in range(4):
            wl = npb_synth(10, np.random.default_rng(seed))
            base = dominant_schedule(wl, pf, strategy="dominant", choice="minratio")
            opt = continuous_schedule(wl, pf)
            assert opt.makespan() <= base.makespan() * (1 + 1e-9)

    def test_registered(self, synth16, pf):
        s = get_scheduler("continuous-opt")(synth16, pf, None)
        assert s.is_feasible()
