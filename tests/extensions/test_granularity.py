"""Tests for the way-granularity (UCP-over-the-model) extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.extensions import granularity_penalty, model_utility_curves, ways_schedule
from repro.machine import small_llc, taihulight
from repro.types import ModelError
from repro.workloads import npb_synth


@pytest.fixture
def pf():
    return taihulight()


@pytest.fixture
def wl(rng):
    return npb_synth(8, rng)


class TestModelCurves:
    def test_shapes_and_monotonicity(self, wl, pf):
        curves = model_utility_curves(wl, pf, 16)
        assert len(curves) == 8
        for c in curves:
            assert c.size == 17
            assert np.all(np.diff(c) <= 1e-9 * c[0])

    def test_endpoints_match_model(self, wl, pf):
        from repro.core.execution import sequential_times

        curves = model_utility_curves(wl, pf, 8)
        full = sequential_times(wl, pf, np.ones(8))
        none = sequential_times(wl, pf, np.zeros(8))
        for i, c in enumerate(curves):
            assert c[0] == pytest.approx(none[i])
            assert c[-1] == pytest.approx(full[i], rel=1e-9)

    def test_rejects_bad_ways(self, wl, pf):
        with pytest.raises(ModelError):
            model_utility_curves(wl, pf, 0)


class TestWaysSchedule:
    def test_feasible_and_way_granular(self, wl, pf):
        sched, ways = ways_schedule(wl, pf, total_ways=20)
        assert sched.is_feasible()
        assert ways.sum() <= 20
        assert np.allclose(sched.cache, ways / 20.0)
        assert sched.finish_time_spread() < 1e-6

    def test_more_ways_never_hurt_much(self, wl, pf):
        """Finer granularity helps overall; the lookahead greedy is not
        exactly optimal, so allow a small non-monotonicity tolerance."""
        spans = [ways_schedule(wl, pf, total_ways=w)[0].makespan()
                 for w in (2, 4, 16, 64)]
        for a, b in zip(spans, spans[1:]):
            assert b <= a * (1 + 0.01)
        assert spans[-1] <= spans[0] * (1 + 1e-9)

    def test_converges_to_continuous(self, pf):
        """With many ways, UCP-over-the-model approaches the Theorem-3
        continuous optimum."""
        from repro.core import dominant_schedule

        wl = npb_synth(8, np.random.default_rng(3), seq_range=None)
        cont = dominant_schedule(wl, pf).makespan()
        disc = ways_schedule(wl, pf, total_ways=512)[0].makespan()
        assert disc == pytest.approx(cont, rel=1e-3)

    def test_penalty_small_at_cat_scale(self, wl, pf):
        """20 ways (CAT-scale) costs essentially nothing on TaihuLight."""
        assert abs(granularity_penalty(wl, pf, total_ways=20)) < 0.02

    def test_penalty_visible_at_coarse_granularity(self):
        """4 ways forces lumpy allocations; the penalty is real."""
        pens = [
            granularity_penalty(
                npb_synth(16, np.random.default_rng(s)), taihulight(), 4
            )
            for s in range(4)
        ]
        assert max(pens) > 0.02

    def test_under_pressure_ucp_competitive(self):
        """On a small LLC UCP may match or beat the greedy subset choice."""
        pf = small_llc()
        wl = npb_synth(12, np.random.default_rng(1)).with_miss_rate(0.5)
        pen = granularity_penalty(wl, pf, total_ways=20)
        assert pen < 0.1  # never catastrophically worse
