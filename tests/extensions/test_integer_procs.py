"""Tests for integer processor rounding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import dominant_schedule
from repro.extensions import integer_schedule, round_processors, rounding_penalty
from repro.machine import taihulight
from repro.types import ModelError
from repro.workloads import npb_synth


@pytest.fixture
def pf():
    return taihulight()


@pytest.fixture
def sched(pf):
    wl = npb_synth(16, np.random.default_rng(1))
    return dominant_schedule(wl, pf, strategy="dominant", choice="minratio")


class TestRoundProcessors:
    @pytest.mark.parametrize("strategy", ["floor", "largest-remainder", "critical-path"])
    def test_integrality_and_budget(self, sched, pf, strategy):
        r = round_processors(sched.procs, sched.workload, pf, sched.cache,
                             strategy=strategy)
        assert np.all(r == np.round(r))
        assert np.all(r >= 1)
        assert r.sum() <= pf.p

    def test_critical_path_no_worse_than_floor(self, sched, pf):
        from repro.core.execution import execution_times

        r_floor = round_processors(sched.procs, sched.workload, pf, sched.cache,
                                   strategy="floor")
        r_cp = round_processors(sched.procs, sched.workload, pf, sched.cache,
                                strategy="critical-path")
        t_floor = execution_times(sched.workload, pf, r_floor, sched.cache).max()
        t_cp = execution_times(sched.workload, pf, r_cp, sched.cache).max()
        assert t_cp <= t_floor * (1 + 1e-12)

    def test_too_many_apps_rejected(self, rng):
        pf = taihulight(p=8.0)
        wl = npb_synth(16, rng)
        sched = dominant_schedule(wl, pf, strategy="dominant", choice="minratio")
        with pytest.raises(ModelError):
            round_processors(sched.procs, wl, pf, sched.cache)

    def test_unknown_strategy(self, sched, pf):
        with pytest.raises(ModelError):
            round_processors(sched.procs, sched.workload, pf, sched.cache,
                             strategy="magic")


class TestIntegerSchedule:
    def test_feasible(self, sched):
        s = integer_schedule(sched)
        assert s.is_feasible()
        assert np.all(s.procs == np.round(s.procs))

    def test_penalty_nonnegative(self, sched):
        """Integer restriction never improves the fractional makespan."""
        assert rounding_penalty(sched) >= -1e-12

    def test_penalty_small_for_homogeneous_workload(self, pf):
        """Equal-sized apps: rounding costs little (procs are large)."""
        wl = npb_synth(8, np.random.default_rng(0),
                       work_range=(1e10, 1.01e10), seq_range=None)
        sched = dominant_schedule(wl, pf, strategy="dominant", choice="minratio")
        assert rounding_penalty(sched) < 0.05

    def test_penalty_large_for_heterogeneous_workload(self, pf):
        """Works spanning 4 decades need sub-processor shares; rounding
        hurts badly - the paper's rationale for rational allocations."""
        wl = npb_synth(16, np.random.default_rng(5), log_work=True)
        sched = dominant_schedule(wl, pf, strategy="dominant", choice="minratio")
        assert rounding_penalty(sched) > 0.05
