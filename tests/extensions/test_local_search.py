"""Tests for the subset local-search extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import dominant_schedule, get_scheduler
from repro.core.heuristics import dominant_partition
from repro.extensions import local_search_partition, local_search_schedule
from repro.machine import small_llc, taihulight
from repro.types import ModelError
from repro.workloads import npb_synth


@pytest.fixture
def pf():
    return taihulight()


class TestLocalSearch:
    def test_never_worse_than_start(self, synth16, pf):
        start = dominant_partition(synth16, pf, "minratio")
        res = local_search_partition(synth16, pf, start)
        assert res.makespan <= res.initial_makespan * (1 + 1e-12)

    def test_moves_counted(self, pf, rng):
        wl = npb_synth(12, rng)
        start = np.zeros(12, dtype=bool)  # deliberately bad start
        res = local_search_partition(wl, pf, start)
        assert res.moves >= 1  # adding any eligible app improves on 0cache
        assert res.evaluations >= res.moves

    def test_finds_optimum_from_bad_start_small(self):
        """From the empty set, search reaches the exact optimum (n small)."""
        from repro.theory import exact_optimal_schedule

        pf = taihulight()
        wl = npb_synth(6, np.random.default_rng(0), seq_range=None)
        res = local_search_partition(wl, pf, np.zeros(6, dtype=bool))
        exact = exact_optimal_schedule(wl, pf)
        assert res.makespan == pytest.approx(exact.makespan, rel=1e-6)

    def test_swap_moves_can_help_under_pressure(self):
        pf = small_llc(p=16.0)
        improved_any = False
        for seed in range(10):
            wl = npb_synth(10, np.random.default_rng(seed),
                           seq_range=None).with_miss_rate(0.6)
            start = dominant_partition(wl, pf, "minratio")
            res = local_search_partition(wl, pf, start)
            if res.moves > 0:
                improved_any = True
        assert improved_any

    def test_wrong_mask_shape(self, synth16, pf):
        with pytest.raises(ModelError):
            local_search_partition(synth16, pf, np.zeros(4, dtype=bool))

    def test_schedule_wrapper(self, synth16, pf):
        s = local_search_schedule(synth16, pf)
        base = dominant_schedule(synth16, pf, strategy="dominant", choice="minratio")
        assert s.is_feasible()
        assert s.makespan() <= base.makespan() * (1 + 1e-12)

    def test_registered(self, synth16, pf):
        s = get_scheduler("localsearch")(synth16, pf, None)
        assert s.is_feasible()
