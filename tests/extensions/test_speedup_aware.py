"""Tests for the speedup-aware cache allocation extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import dominant_schedule, get_scheduler
from repro.core.dominance import optimal_cache_fractions
from repro.core.heuristics import dominant_partition
from repro.extensions import speedup_aware_fractions, speedup_aware_schedule
from repro.machine import taihulight
from repro.types import ModelError
from repro.workloads import npb_synth


@pytest.fixture
def pf():
    return taihulight()


class TestFixedPoint:
    def test_reduces_to_theorem3_for_perfectly_parallel(self, npb6_pp, pf):
        """With s = 0 the KKT rule is exactly Theorem 3."""
        mask = np.ones(6, dtype=bool)
        x_sa = speedup_aware_fractions(npb6_pp, pf, mask)
        x_t3 = optimal_cache_fractions(npb6_pp, pf, mask)
        assert np.allclose(x_sa, x_t3, atol=1e-8)

    def test_fractions_valid(self, synth16, pf):
        mask = dominant_partition(synth16, pf, "minratio")
        x = speedup_aware_fractions(synth16, pf, mask)
        assert np.all(x >= 0)
        assert x.sum() == pytest.approx(1.0)
        assert np.all(x[~mask] == 0.0)

    def test_empty_subset(self, synth16, pf):
        x = speedup_aware_fractions(synth16, pf, np.zeros(16, dtype=bool))
        assert np.all(x == 0.0)

    def test_wrong_shape(self, synth16, pf):
        with pytest.raises(ModelError):
            speedup_aware_fractions(synth16, pf, np.ones(3, dtype=bool))

    def test_zero_weight_subset_rejected(self, pf):
        from repro.core import Application, Workload

        wl = Workload([Application(name="x", work=1e9, access_freq=0.0,
                                   seq_fraction=0.1)])
        with pytest.raises(ModelError):
            speedup_aware_fractions(wl, pf, np.array([True]))


class TestSchedule:
    def test_never_worse_than_theorem3(self, pf):
        """On the same subset, the extension beats or matches Theorem 3."""
        for seed in range(6):
            wl = npb_synth(16, np.random.default_rng(seed))
            base = dominant_schedule(wl, pf, strategy="dominant", choice="minratio")
            ext = speedup_aware_schedule(wl, pf)
            assert ext.makespan() <= base.makespan() * (1 + 1e-9), seed

    def test_strictly_better_on_skewed_amdahl(self, pf):
        """With wildly different s_i, the extension finds real gains."""
        rng = np.random.default_rng(3)
        wl = npb_synth(16, rng, seq_range=(0.0, 0.4))
        base = dominant_schedule(wl, pf, strategy="dominant", choice="minratio")
        ext = speedup_aware_schedule(wl, pf)
        assert ext.makespan() < base.makespan()

    def test_registered(self, synth16, pf):
        s = get_scheduler("speedup-aware")(synth16, pf, None)
        assert s.is_feasible()
        assert s.finish_time_spread() < 1e-6
