"""Golden old-vs-new engine equivalence suite (kernel refactor)."""
