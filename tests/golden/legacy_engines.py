"""Verbatim pre-kernel reference implementations of the three clocks.

These are the hand-rolled time-stepping loops that ``repro`` shipped
before the unified event kernel (:mod:`repro.simulate.kernel`):

* the offline phase loop of ``repro/simulate/engine.py``,
* the online arrival loop of ``repro/online/engine.py``,
* the batch-queue recurrence of ``repro/pipeline/queueing.py``.

They exist only as golden references: the ``kernel_equivalence`` test
suite re-runs seeded sweeps through both the legacy loops below and the
kernel-backed engines and asserts **bit-identical** results.  Do not
"fix" bugs here — the point is to freeze the historical arithmetic
(including its quirks) so any drift in the refactor is caught exactly.

The single intentional divergence class: the legacy loops' epsilon
handling (relative-only arrival admission, per-loop tolerances) differs
from the kernel's canonical abs+rel tolerance on razor-edge instances
that the seeded sweeps never produce; dedicated regression tests cover
those edges separately.
"""

from __future__ import annotations

import numpy as np

from repro.core.application import Workload
from repro.core.execution import access_cost_factor
from repro.core.platform import Platform
from repro.core.registry import get_entry, scheduler_names
from repro.online.allocation import remaining_equal_finish
from repro.types import ModelError

_EPS = 1e-12
_REL_EPS = 1e-12


# ---------------------------------------------------------------------------
# Legacy offline engine (repro/simulate/engine.py before the kernel).
# ---------------------------------------------------------------------------

def legacy_simulate_schedule(schedule, *, policy="static"):
    """The pre-kernel ``simulate_schedule`` loop, verbatim.

    Returns ``(finish_times, events, peak_processors)``.
    """
    if policy not in ("static", "work-conserving"):
        raise ModelError(f"unknown policy {policy!r}")
    wl = schedule.workload
    n = wl.n
    factor = access_cost_factor(wl, schedule.platform, schedule.cache)

    seq_left = wl.seq * wl.work
    par_left = (1.0 - wl.seq) * wl.work
    procs = schedule.procs.astype(np.float64).copy()
    in_seq = seq_left > 0.0
    running = np.ones(n, dtype=bool)

    finish = np.zeros(n)
    events: list[tuple[float, str, int]] = []
    now = 0.0
    peak = float(procs.sum())

    for _ in range(2 * n + 1):
        if not running.any():
            break
        rate = np.where(in_seq, 1.0 / factor, procs / factor)
        remaining = np.where(in_seq, seq_left, par_left)
        dt = np.where(running, remaining / np.maximum(rate, _EPS), np.inf)
        step = float(dt[running].min())
        now += step
        progressed = rate * step
        seq_progress = np.where(running & in_seq, progressed, 0.0)
        par_progress = np.where(running & ~in_seq, progressed, 0.0)
        seq_left = np.maximum(seq_left - seq_progress, 0.0)
        par_left = np.maximum(par_left - par_progress, 0.0)

        for i in np.flatnonzero(running):
            if in_seq[i] and seq_left[i] <= _EPS * wl.work[i]:
                seq_left[i] = 0.0
                in_seq[i] = False
                events.append((now, "seq-done", int(i)))
            if not in_seq[i] and par_left[i] <= _EPS * wl.work[i]:
                par_left[i] = 0.0
                if running[i]:
                    running[i] = False
                    finish[i] = now
                    events.append((now, "done", int(i)))
                    if policy == "work-conserving" and running.any():
                        freed = procs[i]
                        procs[i] = 0.0
                        share = procs[running]
                        total = float(share.sum())
                        if total > 0:
                            procs[running] += freed * share / total
    else:  # pragma: no cover - safety net
        raise ModelError("simulation failed to converge (phase loop exhausted)")

    return finish, events, peak


# ---------------------------------------------------------------------------
# Legacy online engine (repro/online/engine.py before the kernel).
# ---------------------------------------------------------------------------

def _legacy_dominant_fractions_remaining(workload, platform, active, work_left):
    d = workload.miss_coefficients(platform)
    base = work_left * workload.freq * d
    weights = base ** (1.0 / (platform.alpha + 1.0))
    thresholds = d ** (1.0 / platform.alpha)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratios = np.where(thresholds > 0, weights / thresholds, np.inf)

    mask = active & (weights > 0)
    while mask.any():
        total = float(weights[mask].sum())
        violating = mask & (ratios <= total)
        if not violating.any():
            break
        idx = np.flatnonzero(violating)
        mask[idx[np.argmin(ratios[idx])]] = False

    x = np.zeros(workload.n)
    if mask.any():
        total = float(weights[mask].sum())
        x[mask] = weights[mask] / total
    return x


def _legacy_registry_allocation(workload, platform, idx, seq_left, par_left,
                                policy, rng):
    try:
        entry = get_entry(policy)
    except ModelError:
        raise ModelError(
            f"unknown policy {policy!r}; builtin policies: dominant, fair, "
            f"fcfs, plus any registered concurrent scheduler "
            f"({', '.join(scheduler_names())})"
        ) from None
    snapshot = Workload(
        workload[int(i)].scaled(
            work=float(seq_left[i] + par_left[i]),
            seq_fraction=float(seq_left[i] / (seq_left[i] + par_left[i])),
        )
        for i in idx
    )
    schedule = entry(snapshot, platform, rng)
    if not schedule.concurrent:
        raise ModelError(
            f"policy {policy!r} builds a sequential schedule; the online "
            "engine needs a concurrent strategy (use 'fcfs' instead)"
        )
    n = workload.n
    procs = np.zeros(n)
    cache = np.zeros(n)
    procs[idx] = schedule.procs
    cache[idx] = schedule.cache
    return procs, cache


def _legacy_allocate(workload, platform, active, seq_left, par_left, policy,
                     fcfs_order, rng):
    n = workload.n
    procs = np.zeros(n)
    cache = np.zeros(n)
    idx = np.flatnonzero(active)
    if idx.size == 0:
        return procs, cache

    if policy == "fcfs":
        head = idx[np.argmin(fcfs_order[idx])]
        procs[head] = platform.p
        cache[head] = 1.0
        return procs, cache

    if policy == "fair":
        procs[idx] = platform.p / idx.size
        total_freq = float(workload.freq[idx].sum())
        if total_freq > 0:
            cache[idx] = workload.freq[idx] / total_freq
        else:
            cache[idx] = 1.0 / idx.size
        return procs, cache

    if policy == "dominant":
        work_left = seq_left + par_left
        cache = _legacy_dominant_fractions_remaining(
            workload, platform, active, work_left)
        factors = access_cost_factor(workload, platform, cache)
        alloc, _ = remaining_equal_finish(
            seq_left[idx], par_left[idx], factors[idx], platform.p
        )
        procs[idx] = alloc
        return procs, cache

    return _legacy_registry_allocation(
        workload, platform, idx, seq_left, par_left, policy, rng
    )


def legacy_simulate_online(workload, platform, arrival_times, *,
                           policy="dominant", max_events=None, rng=None):
    """The pre-kernel ``simulate_online`` loop, verbatim.

    Returns ``(finish_times, events)``.
    """
    arrivals = np.asarray(arrival_times, dtype=np.float64)
    if arrivals.shape != (workload.n,):
        raise ModelError(f"arrival_times must have shape ({workload.n},)")
    if np.any(arrivals < 0):
        raise ModelError("arrival times must be >= 0")

    n = workload.n
    seq_left = workload.seq * workload.work
    par_left = (1.0 - workload.seq) * workload.work
    arrived = np.zeros(n, dtype=bool)
    finished = np.zeros(n, dtype=bool)
    finish = np.zeros(n)
    fcfs_order = np.argsort(np.argsort(arrivals, kind="stable")).astype(np.float64)

    now = 0.0
    events = 0
    limit = max_events if max_events is not None else 20 * n + 10

    while not finished.all():
        events += 1
        if events > limit:
            raise ModelError("online simulation exceeded its event budget")
        active = arrived & ~finished
        pending = ~arrived
        next_arrival = float(arrivals[pending].min()) if pending.any() else np.inf

        if not active.any():
            now = next_arrival
            newly = pending & (arrivals <= now * (1 + _REL_EPS))
            arrived |= newly
            continue

        procs, cache = _legacy_allocate(
            workload, platform, active, seq_left, par_left, policy, fcfs_order,
            rng,
        )
        factors = access_cost_factor(workload, platform, cache)

        in_seq = active & (seq_left > 0)
        in_par = active & (seq_left <= 0)
        rate = np.zeros(n)
        held = procs > 0
        rate[in_seq & held] = 1.0 / factors[in_seq & held]
        rate[in_par] = procs[in_par] / factors[in_par]
        waiting = active & (rate <= 0)
        remaining = np.where(in_seq, seq_left, par_left)
        dt_finish = np.full(n, np.inf)
        running = active & ~waiting
        dt_finish[running] = remaining[running] / rate[running]
        dt = min(float(dt_finish.min()), next_arrival - now)
        dt = max(dt, 0.0)
        now += dt

        progress = rate * dt
        seq_left = np.where(in_seq, np.maximum(seq_left - progress, 0.0), seq_left)
        par_left = np.where(in_par, np.maximum(par_left - progress, 0.0), par_left)
        for i in np.flatnonzero(active):
            tol = _REL_EPS * workload.work[i]
            if seq_left[i] <= tol:
                seq_left[i] = 0.0
            if seq_left[i] == 0.0 and par_left[i] <= tol:
                par_left[i] = 0.0
                finished[i] = True
                finish[i] = now
        newly = pending & (arrivals <= now * (1 + _REL_EPS) + 1e-300)
        arrived |= newly

    return finish, events


# ---------------------------------------------------------------------------
# Legacy batch-queue recurrence (repro/pipeline/queueing.py before the
# kernel).
# ---------------------------------------------------------------------------

def legacy_simulate_batch_queue(arrivals, service_times, *,
                                buffer_capacity=None):
    """The pre-kernel ``simulate_batch_queue`` recurrence, verbatim.

    Returns ``(completed, dropped, latencies, max_depth, makespan)``.
    """
    arrivals = np.asarray(arrivals, dtype=np.float64)
    service = np.asarray(service_times, dtype=np.float64)
    if arrivals.shape != service.shape or arrivals.ndim != 1:
        raise ModelError("arrivals and service_times must be equal-length 1-D arrays")
    if arrivals.size == 0:
        raise ModelError("need at least one batch")
    if np.any(np.diff(arrivals) < 0):
        raise ModelError("arrivals must be nondecreasing")
    if np.any(service <= 0):
        raise ModelError("service times must be positive")
    if buffer_capacity is not None and buffer_capacity < 0:
        raise ModelError("buffer_capacity must be >= 0")

    admitted_starts: list[float] = []
    admitted_finishes: list[float] = []
    latencies: list[float] = []
    dropped = 0
    max_depth = 0
    server_free_at = 0.0

    for arr, svc in zip(arrivals, service):
        depth = sum(1 for s in admitted_starts if s > arr)
        max_depth = max(max_depth, depth)
        if buffer_capacity is not None and depth >= buffer_capacity and server_free_at > arr:
            dropped += 1
            continue
        start = max(arr, server_free_at)
        finish = start + svc
        admitted_starts.append(start)
        admitted_finishes.append(finish)
        latencies.append(finish - arr)
        server_free_at = finish

    return (
        len(admitted_finishes),
        dropped,
        np.asarray(latencies),
        max_depth,
        float(admitted_finishes[-1]) if admitted_finishes else 0.0,
    )
