"""Golden batch-vs-scalar equivalence: the SoA batch path changes nothing.

Marked ``kernel_equivalence`` like the engine-refactor goldens: every
assertion is **bit-identical** (``==`` on floats, never ``approx``)
over seeded ragged sweeps — mixed instance sizes (including n = 1),
mixed platforms, every registered scheduler (extensions included), the
randomized heuristics under replayed per-row generator streams, the
batched equal-finish solver, the batched simulation kernel, and the
experiment engine's batch grouping.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.extensions  # noqa: F401  (registers speedup-aware & co.)
from repro.core import (
    BatchProblem,
    dominant_schedule_batch,
    equal_finish_allocation,
    equal_finish_allocation_batch,
    get_scheduler,
    optimal_cache_fractions_batch,
    dominant_partition_batch,
    schedule_batch,
    scheduler_names,
)
from repro.machine import small_llc, taihulight, xeon_e5_2690
from repro.simulate import simulate_schedule, simulate_schedule_batch
from repro.workloads import npb_synth, random_workload

pytestmark = pytest.mark.kernel_equivalence

SEEDS = range(5)


def _instances(seed: int, n_rows: int = 20, mixed_platforms: bool = False):
    """A seeded ragged batch: n in [1, 14], alternating datasets."""
    platforms = ([taihulight(), xeon_e5_2690(), small_llc()]
                 if mixed_platforms else [taihulight()])
    rng = np.random.default_rng(1000 * seed)
    out = []
    for i in range(n_rows):
        n = int(rng.integers(1, 15))
        wl = (npb_synth if (seed + i) % 2 else random_workload)(n, rng)
        out.append((wl, platforms[i % len(platforms)]))
    return out


def _assert_schedules_identical(batch, scalar):
    for i, (b, s) in enumerate(zip(batch, scalar)):
        assert type(b) is type(s), i
        # Concurrent schedules carry procs/cache/times; composite ones
        # (e.g. the pairwise-matching extension) only expose makespan.
        if hasattr(s, "procs"):
            assert np.array_equal(s.procs, b.procs), i
            assert np.array_equal(s.cache, b.cache), i
        if hasattr(s, "times"):
            assert np.array_equal(s.times(), b.times()), i
        assert s.makespan() == b.makespan(), i


class TestSchedulerBatchPath:
    """schedule_batch == one scalar registry call per instance."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("name", sorted(scheduler_names()))
    def test_bit_identical(self, seed, name):
        entry = get_scheduler(name)
        instances = _instances(seed)
        rngs = ([np.random.default_rng(seed * 100 + i)
                 for i in range(len(instances))]
                if entry.randomized else None)
        batch = schedule_batch(name, instances, rngs)
        scalar = [
            entry(wl, pf,
                  np.random.default_rng(seed * 100 + i)
                  if entry.randomized else None)
            for i, (wl, pf) in enumerate(instances)
        ]
        _assert_schedules_identical(batch, scalar)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_mixed_platforms(self, seed):
        instances = _instances(seed, mixed_platforms=True)
        batch = schedule_batch("dominant-minratio", instances)
        scalar = [get_scheduler("dominant-minratio")(wl, pf, None)
                  for wl, pf in instances]
        _assert_schedules_identical(batch, scalar)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_padding_invariance(self, seed):
        """A row's result does not depend on how wide its batch is."""
        instances = _instances(seed)
        narrow = schedule_batch("dominant-minratio", instances[:1])
        wide = schedule_batch("dominant-minratio", instances)
        assert np.array_equal(narrow[0].procs, wide[0].procs)
        assert np.array_equal(narrow[0].cache, wide[0].cache)


class TestEqualFinishBatch:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_solver_bit_identical(self, seed):
        instances = _instances(seed, mixed_platforms=True)
        problem = BatchProblem(instances)
        masks = dominant_partition_batch(problem)
        x = optimal_cache_fractions_batch(problem, masks)
        procs, K = equal_finish_allocation_batch(problem, x)
        for i, (wl, pf) in enumerate(instances):
            n = wl.n
            ref_procs, ref_K = equal_finish_allocation(wl, pf, x[i, :n])
            assert np.array_equal(procs[i, :n], ref_procs), i
            assert K[i] == ref_K, i
            assert not procs[i, n:].any(), i


class TestSimulationBatchPath:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_kernel_bit_identical(self, seed):
        instances = _instances(seed, mixed_platforms=True)
        problem = BatchProblem(instances)
        bs = dominant_schedule_batch(problem)
        res = simulate_schedule_batch(bs)
        for i, s in enumerate(bs.schedules()):
            ref = simulate_schedule(s)
            n = instances[i][0].n
            assert np.array_equal(ref.finish_times,
                                  res.finish_times[i, :n]), i
            assert ref.makespan == res.makespans[i], i
            assert not res.finish_times[i, n:].any(), i


class TestEngineBatchGrouping:
    # Two seeds, not five: each case runs the experiment grid twice
    # (batched + scalar) and the scheduler-level sweep above already
    # covers the per-instance equivalence exhaustively.
    @pytest.mark.parametrize("seed", range(2))
    def test_run_experiment_unchanged(self, seed, monkeypatch):
        """The engine's batch grouping changes no experiment floats."""
        from repro.experiments import build_figure, run_experiment
        from repro.experiments import engine as engine_mod

        exp = build_figure("fig1", reps=2, seed=2017 + seed,
                           points=np.array([2.0, 5.0, 9.0]))
        batched = run_experiment(exp, use_cache=False)

        # Disable every batch_fn: same tasks, pure scalar evaluation.
        real_get_entry = engine_mod.get_entry

        class _ScalarOnly:
            def __init__(self, entry):
                self._entry = entry
                self.batch_fn = None

            def __getattr__(self, name):
                return getattr(self._entry, name)

            def __call__(self, *args, **kwargs):
                return self._entry(*args, **kwargs)

        monkeypatch.setattr(engine_mod, "get_entry",
                            lambda name: _ScalarOnly(real_get_entry(name)))
        scalar = run_experiment(exp, use_cache=False)

        assert batched.schedulers == scalar.schedulers
        for name in batched.schedulers:
            for metric in batched.data[name]:
                assert np.array_equal(batched.samples(name, metric),
                                      scalar.samples(name, metric)), (name, metric)
