"""Golden old-vs-new equivalence: the kernel refactor changes nothing.

Every test here is marked ``kernel_equivalence`` (CI runs the marker as
its own job) and asserts **bit-identical** results — ``==`` on floats,
not ``approx`` — between the verbatim pre-kernel reference loops in
:mod:`tests.golden.legacy_engines` and the kernel-backed engines, over
seeded sweeps of workloads, schedules, arrival patterns, and queues.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import get_scheduler
from repro.machine import taihulight
from repro.online import simulate_online
from repro.pipeline import jittered_arrivals, simulate_batch_queue
from repro.simulate import simulate_schedule
from repro.workloads import npb_synth, random_workload

from .legacy_engines import (
    legacy_simulate_batch_queue,
    legacy_simulate_online,
    legacy_simulate_schedule,
)

pytestmark = pytest.mark.kernel_equivalence

SEEDS = range(5)
OFFLINE_SCHEDULERS = ("dominant-minratio", "dominantrev-maxratio", "fair",
                      "0cache", "speedup-aware")
ONLINE_POLICIES = ("dominant", "fair", "fcfs", "dominant-minratio")


def _workload(seed: int, n: int = 8):
    rng = np.random.default_rng(seed)
    return (npb_synth if seed % 2 else random_workload)(n, rng)


@pytest.fixture(scope="module")
def pf():
    return taihulight()


class TestOfflineEngine:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("name", OFFLINE_SCHEDULERS)
    @pytest.mark.parametrize("policy", ["static", "work-conserving"])
    def test_bit_identical(self, pf, seed, name, policy):
        wl = _workload(seed)
        s = get_scheduler(name)(wl, pf, np.random.default_rng(1))
        finish, events, peak = legacy_simulate_schedule(s, policy=policy)
        res = simulate_schedule(s, policy=policy)
        assert np.array_equal(finish, res.finish_times)
        assert events == res.events
        # The legacy loop sampled its "peak" once from the t=0
        # allocation total and never re-sampled; the kernel samples
        # usage at every event.  Compare like-for-like via the kernel's
        # t=0 sample — under work-conserving redistribution the in-use
        # total can drift a few ulps above the initial sum, so the
        # max-over-time peak only matches approximately.
        assert peak == res.processor_usage[0][1]
        assert res.peak_processors == pytest.approx(peak)
        assert float(finish.max()) == res.makespan


class TestOnlineEngine:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("pattern", ["zeros", "stagger", "waves", "shift"])
    @pytest.mark.parametrize("policy", ONLINE_POLICIES)
    def test_bit_identical(self, pf, seed, pattern, policy):
        wl = _workload(seed)
        horizon = get_scheduler("dominant-minratio")(wl, pf, None).makespan()
        arrivals = {
            "zeros": np.zeros(8),
            "stagger": np.sort(
                np.random.default_rng(seed + 10).uniform(0, horizon, 8)),
            "waves": np.array([0.0] * 4 + [horizon / 2] * 4),
            "shift": np.full(8, horizon),
        }[pattern]
        finish, events = legacy_simulate_online(
            wl, pf, arrivals, policy=policy, rng=np.random.default_rng(7))
        res = simulate_online(
            wl, pf, arrivals, policy=policy, rng=np.random.default_rng(7))
        assert np.array_equal(finish, res.finish_times)
        assert events == res.events

    @pytest.mark.parametrize("seed", SEEDS)
    def test_bit_identical_randomized_policy(self, pf, seed):
        """Same rng stream -> the randomized registry policy replays."""
        wl = _workload(seed)
        arrivals = np.zeros(8)
        finish, events = legacy_simulate_online(
            wl, pf, arrivals, policy="randompart",
            rng=np.random.default_rng(seed))
        res = simulate_online(wl, pf, arrivals, policy="randompart",
                              rng=np.random.default_rng(seed))
        assert np.array_equal(finish, res.finish_times)
        assert events == res.events


class TestBatchQueue:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("capacity", [None, 0, 2, 5])
    def test_bit_identical(self, seed, capacity):
        rng = np.random.default_rng(seed + 20)
        arrivals = jittered_arrivals(60, 10.0, rng, jitter=0.3)
        service = rng.uniform(4.0, 16.0, 60)
        completed, dropped, latencies, depth, makespan = (
            legacy_simulate_batch_queue(arrivals, service,
                                        buffer_capacity=capacity))
        stats = simulate_batch_queue(arrivals, service,
                                     buffer_capacity=capacity)
        assert completed == stats.completed
        assert dropped == stats.dropped
        assert np.array_equal(latencies, stats.latencies)
        assert depth == stats.max_queue_depth
        assert makespan == stats.makespan
