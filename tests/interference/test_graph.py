"""Tests for interference graphs and pairwise degradations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.interference import (
    access_pressure,
    corun_degradations,
    interference_graph,
    interference_matrix,
    shared_cache_fractions,
)
from repro.machine import taihulight
from repro.types import ModelError
from repro.workloads import npb6


@pytest.fixture
def pf():
    return taihulight()


class TestSharedFractions:
    def test_pressure_proportional(self, npb6_pp, pf):
        mask = np.ones(6, dtype=bool)
        x = shared_cache_fractions(npb6_pp, mask)
        pressure = access_pressure(npb6_pp)
        assert np.allclose(x, pressure / pressure.sum())
        assert x.sum() == pytest.approx(1.0)

    def test_non_members_zero(self, npb6_pp):
        mask = np.array([True, True, False, False, False, False])
        x = shared_cache_fractions(npb6_pp, mask)
        assert np.all(x[2:] == 0.0)
        assert x[:2].sum() == pytest.approx(1.0)

    def test_empty_group(self, npb6_pp):
        x = shared_cache_fractions(npb6_pp, np.zeros(6, dtype=bool))
        assert np.all(x == 0.0)

    def test_zero_pressure_splits_equally(self):
        from repro.core import Application, Workload

        wl = Workload([Application(name=f"t{i}", work=1e9, access_freq=0.0)
                       for i in range(4)])
        x = shared_cache_fractions(wl, np.ones(4, dtype=bool))
        assert np.allclose(x, 0.25)

    def test_wrong_shape(self, npb6_pp):
        with pytest.raises(ModelError):
            shared_cache_fractions(npb6_pp, np.ones(3, dtype=bool))


class TestDegradations:
    def test_alone_no_degradation(self, npb6_pp, pf):
        mask = np.zeros(6, dtype=bool)
        mask[0] = True
        deg = corun_degradations(npb6_pp, pf, mask)
        assert deg[0] == pytest.approx(1.0)

    def test_degradation_at_least_one(self, npb6_pp, pf):
        deg = corun_degradations(npb6_pp, pf, np.ones(6, dtype=bool))
        assert np.all(deg >= 1.0 - 1e-12)

    def test_bigger_groups_degrade_more(self, npb6_pp, pf):
        pair = np.zeros(6, dtype=bool)
        pair[[0, 1]] = True
        all6 = np.ones(6, dtype=bool)
        deg_pair = corun_degradations(npb6_pp, pf, pair)[0]
        deg_all = corun_degradations(npb6_pp, pf, all6)[0]
        assert deg_all >= deg_pair - 1e-12


class TestMatrix:
    def test_symmetric_zero_diagonal(self, npb6_pp, pf):
        m = interference_matrix(npb6_pp, pf)
        assert np.allclose(m, m.T)
        assert np.all(np.diag(m) == 0.0)
        assert np.all(m >= 0.0)

    def test_graph_mirrors_matrix(self, npb6_pp, pf):
        m = interference_matrix(npb6_pp, pf)
        g = interference_graph(npb6_pp, pf)
        assert g.number_of_nodes() == 6
        assert g.number_of_edges() == 15
        for i, j, data in g.edges(data=True):
            assert data["weight"] == pytest.approx(m[i, j])

    def test_node_names(self, rng, pf):
        wl = npb6(rng=rng)
        g = interference_graph(wl, pf)
        assert g.nodes[0]["name"] == "CG"
