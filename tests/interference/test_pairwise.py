"""Tests for the min-weight-matching pairwise co-scheduler."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core import get_scheduler
from repro.interference import pair_makespan, pairwise_matching_schedule
from repro.machine import taihulight
from repro.workloads import npb_synth


@pytest.fixture
def pf():
    return taihulight()


class TestPairwiseSchedule:
    def test_even_n_all_pairs(self, pf, rng):
        wl = npb_synth(8, rng)
        ps = pairwise_matching_schedule(wl, pf)
        assert sorted(i for g in ps.groups for i in g) == list(range(8))
        assert all(len(g) == 2 for g in ps.groups)

    def test_odd_n_one_singleton(self, pf, rng):
        wl = npb_synth(7, rng)
        ps = pairwise_matching_schedule(wl, pf)
        sizes = sorted(len(g) for g in ps.groups)
        assert sizes == [1, 2, 2, 2]

    def test_single_app(self, pf, rng):
        wl = npb_synth(1, rng)
        ps = pairwise_matching_schedule(wl, pf)
        assert ps.groups == [(0,)]
        solo = get_scheduler("allproccache")(wl, pf, None)
        assert ps.makespan() == pytest.approx(solo.makespan())

    def test_makespan_is_sum_of_batches(self, pf, rng):
        wl = npb_synth(6, rng)
        ps = pairwise_matching_schedule(wl, pf)
        assert ps.makespan() == pytest.approx(ps.group_makespans().sum())
        assert not ps.concurrent

    def test_matching_is_optimal_for_pairs(self, pf):
        """The chosen pairing beats every other perfect pairing (n=6)."""
        wl = npb_synth(6, np.random.default_rng(2))
        ps = pairwise_matching_schedule(wl, pf)
        best = ps.makespan()

        def pairings(items):
            if not items:
                yield []
                return
            a = items[0]
            for k in range(1, len(items)):
                b = items[k]
                rest = items[1:k] + items[k + 1:]
                for tail in pairings(rest):
                    yield [(a, b)] + tail

        for pairing in pairings(list(range(6))):
            total = sum(pair_makespan(wl, pf, i, j) for i, j in pairing)
            assert total >= best * (1 - 1e-9)

    def test_beats_allproccache_but_loses_to_dominant(self, pf):
        """The paper's thesis: pairwise time-slicing helps, full
        partitioned co-scheduling helps more."""
        for seed in range(4):
            wl = npb_synth(10, np.random.default_rng(seed))
            ps = pairwise_matching_schedule(wl, pf)
            apc = get_scheduler("allproccache")(wl, pf, None)
            dom = get_scheduler("dominant-minratio")(wl, pf, None)
            assert ps.makespan() < apc.makespan(), seed
            assert dom.makespan() < ps.makespan(), seed

    def test_registered(self, pf, rng):
        wl = npb_synth(4, rng)
        s = get_scheduler("pairwise-matching")(wl, pf, None)
        assert s.makespan() > 0

    def test_describe(self, pf, rng):
        wl = npb_synth(4, rng)
        text = pairwise_matching_schedule(wl, pf).describe()
        assert "batches" in text
