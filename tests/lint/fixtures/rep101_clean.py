"""Fixture: seeded-Generator discipline — REP101 must stay silent."""

import numpy as np


def make_rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def jitter(rng: np.random.Generator) -> float:
    return float(rng.random())
