"""Fixture: module-level global RNG draws — REP101 must fire twice."""

import random

import numpy as np


def jitter() -> float:
    return random.random() + np.random.rand()
