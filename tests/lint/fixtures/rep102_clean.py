"""Fixture: time comes from the simulation clock — REP102 silent."""


def advance(now: float, dt: float) -> float:
    return now + dt
