"""Fixture: wall-clock and entropy in a kernel path — REP102 fires."""

import os
import time
import uuid
from datetime import datetime


def stamp():
    return time.time(), datetime.now(), uuid.uuid4(), os.urandom(8)
