"""Fixture: stable key-bit sharding and a __hash__ body — REP103 silent."""

import zlib


def shard_for(key: str, mask: int) -> int:
    try:
        return int(key[:8], 16) & mask
    except ValueError:
        return zlib.crc32(key.encode()) & mask


class Point:
    def __init__(self, x: int, y: int):
        self.x, self.y = x, y

    def __hash__(self) -> int:
        return hash((self.x, self.y))
