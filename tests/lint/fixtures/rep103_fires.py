"""Fixture: builtin hash() on a string key — REP103 must fire."""


def shard_for(key: str, nshards: int) -> int:
    return hash(key) % nshards
