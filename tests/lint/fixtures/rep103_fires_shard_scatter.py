"""Regression fixture: the PR 8 hash()-shard-scatter bug, verbatim shape.

``hash(fingerprint)`` is randomized per process (PYTHONHASHSEED), so
every pre-forked worker scattered the same fingerprint onto a
different shard and the cross-process hit rate silently collapsed.
REP103 must flag the ``_index`` body.
"""

import threading


class ShardedDecisionCache:
    def __init__(self, shards: int = 8):
        self._dicts = [dict() for _ in range(shards)]
        self._locks = [threading.Lock() for _ in range(shards)]

    def _index(self, fingerprint: str) -> int:
        return hash(fingerprint) % len(self._dicts)

    def get(self, fingerprint: str):
        i = self._index(fingerprint)
        with self._locks[i]:
            return self._dicts[i].get(fingerprint)
