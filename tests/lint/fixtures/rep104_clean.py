"""Fixture: every enumeration sorted before iteration — REP104 silent."""

import os
from pathlib import Path


def enumerate_entries(cache_dir: Path) -> list[str]:
    names = []
    for path in sorted(cache_dir.glob("*.npz")):
        names.append(path.name)
    for name in sorted(os.listdir(cache_dir)):
        names.append(name)
    for tag in sorted({"b", "a"}):
        names.append(tag)
    return [str(p) for p in sorted(cache_dir.iterdir())]
