"""Fixture: filesystem-order and set-order iteration — REP104 fires."""

import os
from pathlib import Path


def enumerate_entries(cache_dir: Path) -> list[str]:
    names = []
    for path in cache_dir.glob("*.npz"):
        names.append(path.name)
    for name in os.listdir(cache_dir):
        names.append(name)
    for tag in {"b", "a"}:
        names.append(tag)
    return [str(p) for p in cache_dir.iterdir()]
