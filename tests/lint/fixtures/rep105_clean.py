"""Fixture: tolerance-helper comparisons and exact sentinels — silent."""

ABS_TOL = 1e-9


def boundary_tol(scale: float) -> float:
    return ABS_TOL * (1.0 if scale == 1.5 else abs(scale))


def at_boundary(now: float, boundary: float) -> bool:
    return abs(now - boundary) <= boundary_tol(boundary)


def is_unset(x: float) -> bool:
    return x == 0.0


def count_matches(n: int) -> bool:
    return n == 3
