"""Fixture: raw float equality in kernel code — REP105 must fire."""


def phase_done(now: float) -> bool:
    return now == 1.5


def never_half(x: float) -> bool:
    return x != 0.25
