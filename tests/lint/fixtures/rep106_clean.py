"""Fixture: canonical-encoding fingerprints; repr elsewhere — silent."""

import hashlib
import json


def spec_fingerprint(spec: dict) -> str:
    blob = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def describe(spec) -> str:
    return repr(spec)
