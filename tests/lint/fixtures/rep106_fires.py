"""Fixture: repr of arbitrary objects in a fingerprint — REP106 fires."""


def spec_fingerprint(spec) -> str:
    return "|".join([repr(spec), f"{spec!r}"])
