"""Fixture: registered kinds, numpy's unrelated kind= kwargs — silent."""

import numpy as np


def count_arrivals(log, values: np.ndarray) -> int:
    log.record(0.0, "arrival", 1)
    order = np.argsort(values, kind="stable")
    if values.dtype.kind == "f":
        order = order[::-1]
    done = [e for e in log if e.kind == "done"]
    return len(log.select("arrival")) + len(done) + int(order[0])
