"""Fixture: event kinds outside the registered set — REP107 fires."""


def count_bogus(log) -> int:
    log.record(0.0, "not-a-kind", 1)
    finished = [e for e in log if e.kind == "finished"]
    return len(log.select("also-bogus")) + len(finished)
