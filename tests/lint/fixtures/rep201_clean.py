"""Fixture: mutations under the owning lock; lock-free class — silent."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._hits = 0

    def hit(self) -> None:
        with self._lock:
            self._hits += 1


class Tally:
    """No lock, no sharing contract: free to mutate."""

    def __init__(self):
        self._count = 0

    def bump(self) -> None:
        self._count += 1
