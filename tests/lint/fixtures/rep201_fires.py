"""Fixture: guarded state mutated outside the lock — REP201 fires."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._hits = 0
        self._entries = {}

    def hit(self, key: str) -> None:
        self._hits += 1
        self._entries[key] = True
