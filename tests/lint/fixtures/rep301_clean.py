"""Fixture: None defaults built in the body — REP301 silent."""


def collect(item, bucket=None):
    if bucket is None:
        bucket = []
    bucket.append(item)
    return bucket
