"""Fixture: mutable default arguments — REP301 fires on both."""


def collect(item, bucket=[]):
    bucket.append(item)
    return bucket


def tally(item, *, seen=set()):
    seen.add(item)
    return seen
