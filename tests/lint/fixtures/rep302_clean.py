"""Fixture: narrow swallow, broad-but-handled — REP302 silent."""


def unlink_best_effort(path) -> None:
    try:
        path.unlink()
    except OSError:
        pass


def load(path, errors: list) -> str:
    try:
        return path.read_text()
    except Exception as exc:
        errors.append(str(exc))
        return ""
