"""Fixture: broad exception handlers that swallow — REP302 fires."""


def load(path) -> str:
    try:
        return path.read_text()
    except Exception:
        pass
    try:
        return path.read_bytes().decode()
    except:  # noqa: E722
        ...
    return ""
