"""Fixture: a well-formed suppression — REP303 silent, REP103 waived."""


def shard_for(key: str, nshards: int) -> int:
    return hash(key) % nshards  # repro-lint: disable=REP103 -- fixture demonstrating a well-formed waiver
