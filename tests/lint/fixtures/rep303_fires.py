"""Fixture: suppression directives missing reasons / naming unknown
rules — REP303 fires on both directives."""

import zlib


def shard(key: str) -> int:
    return zlib.crc32(key.encode()) & 7  # repro-lint: disable=REP103


def other(key: str) -> int:
    return len(key)  # repro-lint: disable=REP999 -- no such rule
