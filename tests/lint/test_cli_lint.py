"""CLI surface of the linter: ``repro lint`` verb, formats, exit codes."""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main
from repro.lint import rule_ids

FIXTURES = Path(__file__).parent / "fixtures"


def test_list_rules_names_every_rule(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in rule_ids():
        assert rule_id in out
    for profile in ("strict", "default", "relaxed"):
        assert f"profile {profile}:" in out


def test_firing_fixture_exits_1(capsys):
    rc = main(["lint", "--profile", "strict",
               str(FIXTURES / "rep103_fires.py")])
    out = capsys.readouterr().out
    assert rc == 1
    assert "REP103" in out
    assert "unstable-hash" in out


def test_clean_fixture_exits_0(capsys):
    rc = main(["lint", "--profile", "strict",
               str(FIXTURES / "rep103_clean.py")])
    out = capsys.readouterr().out
    assert rc == 0
    assert "clean: 0 findings" in out


def test_json_format_is_machine_readable(capsys):
    rc = main(["lint", "--format", "json", "--profile", "strict",
               str(FIXTURES / "rep101_fires.py")])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert payload["ok"] is False
    assert payload["counts_by_rule"].get("REP101", 0) >= 2
    assert all(f["rule"].startswith("REP") for f in payload["findings"])


def test_suppressions_counted_in_json(capsys):
    rc = main(["lint", "--format", "json", "--profile", "strict",
               str(FIXTURES / "rep303_clean.py")])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert payload["suppressed_count"] == 1
    assert payload["suppressed"][0]["rule"] == "REP103"
    assert payload["suppressed"][0]["reason"]


def test_missing_path_exits_2(capsys):
    rc = main(["lint", "does/not/exist"])
    err = capsys.readouterr().err
    assert rc == 2
    assert "does not exist" in err


def test_lint_directory_scans_recursively(capsys):
    rc = main(["lint", "--format", "json", "--profile", "strict",
               str(FIXTURES)])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 1  # the firing fixtures fire
    assert payload["files_scanned"] == len(list(FIXTURES.glob("*.py")))
