"""Unit tests for the lint machinery itself: context, config, runner,
suppressions, reporters."""

from __future__ import annotations

import json

import pytest

from repro.lint import (
    FileContext,
    iter_python_files,
    lint_file,
    lint_paths,
    profile_for_path,
    render_json,
    render_text,
    rules_for_path,
)
from repro.lint.base import PARSE_ERROR_ID
from repro.lint.config import PROFILES
from repro.lint.rules.determinism import _registered_event_kinds


class TestFileContext:
    def test_parent_links_and_enclosing(self):
        ctx = FileContext("mem.py", source=(
            "class C:\n"
            "    def m(self):\n"
            "        return hash('x')\n"))
        import ast
        call = next(n for n in ctx.walk() if isinstance(n, ast.Call))
        assert ctx.enclosing_function(call).name == "m"
        assert ctx.enclosing_class(call).name == "C"

    def test_import_alias_resolution(self):
        ctx = FileContext("mem.py", source=(
            "import numpy as np\n"
            "import numpy.random as npr\n"
            "from numpy.random import default_rng\n"
            "x = np.random.rand()\n"))
        import ast
        call = next(n for n in ctx.walk() if isinstance(n, ast.Call))
        assert ctx.resolve_chain(call.func) == "numpy.random.rand"
        assert ctx.module_aliases["npr"] == "numpy.random"
        assert ctx.from_imports["default_rng"] == "numpy.random.default_rng"

    def test_builtin_shadowing_detected(self):
        ctx = FileContext("mem.py", source="from mymod import hash\n")
        assert not ctx.is_builtin_name("hash")
        assert ctx.is_builtin_name("repr")

    def test_syntax_error_is_reported_not_raised(self):
        report = lint_file("broken.py", source="def f(:\n", profile="strict")
        assert len(report.findings) == 1
        assert report.findings[0].rule_id == PARSE_ERROR_ID


class TestSuppressions:
    def test_valid_directive_suppresses_and_is_counted(self):
        source = "k = hash('x')  # repro-lint: disable=REP103 -- key never crosses processes\n"
        report = lint_file("mem.py", source=source, profile="strict")
        assert not [f for f in report.findings if f.rule_id == "REP103"]
        assert len(report.suppressed) == 1
        sup = report.suppressed[0]
        assert sup.rule_id == "REP103"
        assert sup.suppress_reason == "key never crosses processes"

    def test_reason_is_mandatory(self):
        source = "k = hash('x')  # repro-lint: disable=REP103\n"
        report = lint_file("mem.py", source=source, profile="strict")
        ids = {f.rule_id for f in report.findings}
        assert "REP103" in ids  # nothing was silenced
        assert "REP303" in ids  # and the malformed directive is flagged

    def test_unknown_rule_id_flagged(self):
        source = "x = 1  # repro-lint: disable=REP999 -- typo'd id\n"
        report = lint_file("mem.py", source=source, profile="strict")
        assert [f for f in report.findings if f.rule_id == "REP303"]

    def test_directive_only_covers_its_line(self):
        source = ("a = hash('x')  # repro-lint: disable=REP103 -- only this line\n"
                  "b = hash('y')\n")
        report = lint_file("mem.py", source=source, profile="strict")
        active = [f for f in report.findings if f.rule_id == "REP103"]
        assert len(active) == 1 and active[0].line == 2

    def test_docstring_mention_is_not_a_directive(self):
        source = ('"""Docs show `# repro-lint: disable=<ID> -- <reason>`."""\n'
                  "x = 1\n")
        report = lint_file("mem.py", source=source, profile="strict")
        assert not report.findings
        assert not report.suppressed

    def test_multiple_ids_one_directive(self):
        source = ("import random\n"
                  "x = random.random() == 1.5  "
                  "# repro-lint: disable=REP101,REP105 -- fixture exercising multi-id\n")
        report = lint_file("mem.py", source=source, profile="strict")
        assert not report.findings
        assert {f.rule_id for f in report.suppressed} == {"REP101", "REP105"}


class TestConfig:
    @pytest.mark.parametrize("path,profile", [
        ("src/repro/core/schedule.py", "strict"),
        ("src/repro/simulate/kernel.py", "strict"),
        ("src/repro/chaos/faults.py", "strict"),
        ("src/repro/cache/memory.py", "strict"),
        ("src/repro/online/engine.py", "strict"),
        ("src/repro/service/core.py", "default"),
        ("src/repro/experiments/engine.py", "default"),
        ("src/repro/cli.py", "default"),
        ("src/repro/viz/ascii_plot.py", "relaxed"),
        ("benchmarks/bench_service.py", "relaxed"),
        ("tests/core/test_batch.py", "relaxed"),
        ("/abs/checkout/src/repro/cache/disk.py", "strict"),
    ])
    def test_profile_mapping(self, path, profile):
        assert profile_for_path(path) == profile

    def test_relaxed_is_hygiene_only(self):
        ids = {r.id for r in rules_for_path("benchmarks/bench_x.py")}
        assert ids == set(PROFILES["relaxed"])

    def test_strict_is_everything(self):
        from repro.lint import all_rules

        ids = {r.id for r in rules_for_path("src/repro/core/x.py")}
        assert ids == {r.id for r in all_rules()}

    def test_wall_clock_not_policed_outside_kernel_paths(self):
        source = "import time\nt = time.time()\n"
        strict = lint_file("src/repro/core/x.py", source=source,
                           profile="strict")
        default = lint_file("src/repro/service/x.py", source=source,
                            profile="default")
        assert [f for f in strict.findings if f.rule_id == "REP102"]
        assert not [f for f in default.findings if f.rule_id == "REP102"]


class TestRunner:
    def test_iter_python_files_sorted_and_deduped(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1\n")
        (tmp_path / "a.py").write_text("x = 1\n")
        sub = tmp_path / "pkg"
        sub.mkdir()
        (sub / "c.py").write_text("x = 1\n")
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text("x = 1\n")
        files = list(iter_python_files([tmp_path, tmp_path / "a.py"]))
        names = [f.name for f in files]
        assert names == ["a.py", "b.py", "c.py"]

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            list(iter_python_files([tmp_path / "nope"]))

    def test_lint_paths_deterministic(self, tmp_path):
        (tmp_path / "a.py").write_text("k = hash('x')\n")
        (tmp_path / "b.py").write_text("import random\nr = random.random()\n")
        one = lint_paths([tmp_path], profile="strict")
        two = lint_paths([tmp_path], profile="strict")
        assert [f.sort_key() for f in one.findings] \
            == [f.sort_key() for f in two.findings]
        assert one.files_scanned == 2


class TestReporters:
    def _report(self, tmp_path):
        (tmp_path / "a.py").write_text(
            "k = hash('x')\n"
            "j = hash('y')  # repro-lint: disable=REP103 -- waived for the test\n")
        return lint_paths([tmp_path], profile="strict")

    def test_text_report(self, tmp_path):
        text = render_text(self._report(tmp_path))
        assert "REP103" in text
        assert "suppressed: waived for the test" in text
        assert "1 finding(s)" in text

    def test_json_report_contract(self, tmp_path):
        payload = json.loads(render_json(self._report(tmp_path)))
        assert payload["schema_version"] == 1
        assert payload["finding_count"] == 1
        assert payload["suppressed_count"] == 1
        assert payload["counts_by_rule"] == {"REP103": 1}
        assert payload["ok"] is False
        sup = payload["suppressed"][0]
        assert sup["rule"] == "REP103"
        assert sup["reason"] == "waived for the test"
        active = payload["findings"][0]
        assert set(active) >= {"path", "line", "col", "rule", "name", "message"}

    def test_clean_json_is_ok(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        payload = json.loads(render_json(lint_paths([tmp_path],
                                                    profile="strict")))
        assert payload["ok"] is True
        assert payload["findings"] == []


class TestEventKindSync:
    def test_rule_set_matches_kernel(self):
        from repro.simulate.kernel import EVENT_KINDS

        assert _registered_event_kinds() == frozenset(EVENT_KINDS)
