"""Meta-contract of the rule registry and its fixture corpus.

Every registered rule must carry a stable well-formed ID, a docstring
explaining the bug class, and a fixture corpus proving it both fires
and stays silent — including the PR 8 ``hash()``-shard-scatter
regression fixture.  A rule that cannot demonstrate itself is a rule
nobody can trust in CI.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.lint import all_rules, lint_file, rule_ids
from repro.lint.base import PARSE_ERROR_ID

FIXTURES = Path(__file__).parent / "fixtures"

#: The committed rule inventory.  Append-only: retiring a rule retires
#: its number; renumbering would orphan every suppression in history.
EXPECTED_RULE_IDS = (
    "REP101", "REP102", "REP103", "REP104", "REP105", "REP106", "REP107",
    "REP201",
    "REP301", "REP302", "REP303",
)


def _lint_strict(path: Path):
    return lint_file(path, profile="strict")


def test_rule_inventory_is_stable():
    assert rule_ids() == EXPECTED_RULE_IDS


def test_every_rule_well_formed():
    for rule in all_rules():
        assert re.fullmatch(r"REP[0-9]{3}", rule.id), rule
        assert rule.id != PARSE_ERROR_ID
        assert re.fullmatch(r"[a-z0-9]+(-[a-z0-9]+)*", rule.name), rule.id
        assert rule.category in ("determinism", "concurrency", "hygiene")
        assert (type(rule).__doc__ or "").strip(), f"{rule.id} lacks a docstring"
        assert rule.summary(), f"{rule.id} lacks a summary line"


@pytest.mark.parametrize("rule_id", EXPECTED_RULE_IDS)
def test_rule_has_firing_fixture(rule_id):
    fires = sorted(FIXTURES.glob(f"{rule_id.lower()}_fires*.py"))
    assert fires, f"{rule_id}: no firing fixture in {FIXTURES}"
    for path in fires:
        report = _lint_strict(path)
        hits = [f for f in report.findings if f.rule_id == rule_id]
        assert hits, f"{rule_id} did not fire on its fixture {path.name}"


@pytest.mark.parametrize("rule_id", EXPECTED_RULE_IDS)
def test_rule_has_clean_fixture(rule_id):
    clean = sorted(FIXTURES.glob(f"{rule_id.lower()}_clean*.py"))
    assert clean, f"{rule_id}: no non-firing fixture in {FIXTURES}"
    for path in clean:
        report = _lint_strict(path)
        hits = [f for f in report.findings if f.rule_id == rule_id]
        assert not hits, (
            f"{rule_id} fired on its clean fixture {path.name}: {hits}")


def test_hash_shard_scatter_regression_fixture():
    """The PR 8 bug shape stays detectable: hash(fingerprint) % shards."""
    path = FIXTURES / "rep103_fires_shard_scatter.py"
    assert path.is_file()
    report = _lint_strict(path)
    hits = [f for f in report.findings if f.rule_id == "REP103"]
    assert hits, "shard-scatter regression fixture no longer detected"
    assert any("hash()" in f.message for f in hits)


def test_fixture_corpus_has_no_strays():
    """Every fixture file belongs to a registered rule."""
    for path in sorted(FIXTURES.glob("*.py")):
        stem = path.stem
        assert re.match(r"rep[0-9]{3}_(fires|clean)", stem), path.name
        rule_id = stem[:6].upper()
        assert rule_id in EXPECTED_RULE_IDS, (
            f"fixture {path.name} names unregistered rule {rule_id}")


def test_firing_fixture_messages_name_the_rule():
    """Findings carry the rule name so reports are self-explanatory."""
    for rule in all_rules():
        fires = sorted(FIXTURES.glob(f"{rule.id.lower()}_fires*.py"))
        for path in fires:
            for f in _lint_strict(path).findings:
                if f.rule_id == rule.id:
                    assert f.rule_name == rule.name
                    assert f.message
                    assert f.line >= 1
