"""The shipped tree passes its own gate with an empty baseline.

This is the in-suite twin of the ``lint-gate`` CI job: ``src/`` and
``benchmarks/`` must produce zero active findings under the default
per-path profiles, and the chaos scenario corpus' generator code must
hold the strict determinism contract (scenario replay is the whole
point of the corpus).
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import lint_paths, render_text

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_src_and_benchmarks_lint_clean():
    report = lint_paths([REPO_ROOT / "src", REPO_ROOT / "benchmarks"])
    assert report.ok, "lint gate broken:\n" + render_text(report)
    assert report.files_scanned > 100  # the scan actually covered the tree


def test_suppression_budget_is_tracked_and_small():
    """Waivers are allowed but enumerable; growth is a deliberate act."""
    report = lint_paths([REPO_ROOT / "src", REPO_ROOT / "benchmarks"])
    assert all(f.suppress_reason for f in report.suppressed)
    assert len(report.suppressed) <= 8, (
        "suppression budget creeping up:\n"
        + "\n".join(f"{f.path}:{f.line} {f.rule_id} -- {f.suppress_reason}"
                    for f in report.suppressed))


def test_chaos_scenario_generator_code_is_strict_clean():
    """The corpus' generator/loader code replays byte-identically, so it
    answers to the full determinism profile, not the relaxed test one.

    One exception: REP105 (float equality) is *inverted* in this
    corpus — asserting exact float event times is how the tests prove
    byte-identical replay, so exact ``==`` is the contract, not a bug.
    """
    from repro.lint import all_rules

    chaos_tests = REPO_ROOT / "tests" / "chaos"
    rules = [r for r in all_rules() if r.id != "REP105"]
    report = lint_paths([chaos_tests], rules=rules)
    assert report.ok, "chaos corpus code violates the determinism contract:\n" \
        + render_text(report)
