"""Tests for platform presets."""

from __future__ import annotations

import pytest

from repro.machine import custom, get_preset, small_llc, taihulight, xeon_e5_2690


class TestPresets:
    def test_taihulight_matches_paper(self):
        pf = taihulight()
        assert pf.p == 256
        assert pf.cache_size == 32000e6
        assert pf.latency_cache == 0.17
        assert pf.latency_memory == 1.0
        assert pf.alpha == 0.5

    def test_taihulight_overrides(self):
        assert taihulight(p=128).p == 128
        assert taihulight(alpha=0.3).alpha == 0.3

    def test_xeon(self):
        pf = xeon_e5_2690()
        assert pf.p == 8
        assert pf.cache_size == 20e6

    def test_xeon_multi_socket(self):
        pf = xeon_e5_2690(sockets=2)
        assert pf.p == 16
        assert pf.cache_size == 40e6

    def test_xeon_rejects_zero_sockets(self):
        with pytest.raises(ValueError):
            xeon_e5_2690(sockets=0)

    def test_small_llc(self):
        assert small_llc().cache_size == 1e9

    def test_custom(self):
        pf = custom(12, 5e8, alpha=0.4)
        assert pf.p == 12
        assert pf.alpha == 0.4

    def test_get_preset(self):
        assert get_preset("taihulight") == taihulight()
        assert get_preset("TAIHULIGHT") == taihulight()

    def test_get_preset_unknown(self):
        with pytest.raises(KeyError):
            get_preset("cray")
