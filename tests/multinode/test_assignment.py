"""Tests for multi-node assignment and cluster scheduling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine import taihulight
from repro.multinode import (
    exhaustive_assignment,
    lpt_assignment,
    lpt_refined_assignment,
    round_robin_assignment,
    schedule_cluster,
)
from repro.types import ModelError
from repro.workloads import npb_synth


@pytest.fixture
def pf():
    return taihulight(p=64.0)


@pytest.fixture
def wl(rng):
    return npb_synth(12, rng)


class TestAssignments:
    def test_round_robin(self, wl, pf):
        a = round_robin_assignment(wl, pf, 3)
        assert a.tolist() == [i % 3 for i in range(12)]

    def test_lpt_uses_all_nodes(self, wl, pf):
        a = lpt_assignment(wl, pf, 4)
        assert set(a.tolist()) == {0, 1, 2, 3}

    def test_lpt_beats_round_robin_usually(self, pf):
        wins = 0
        for seed in range(8):
            w = npb_synth(16, np.random.default_rng(seed))
            rr = schedule_cluster(w, pf, round_robin_assignment(w, pf, 4)).makespan()
            lpt = schedule_cluster(w, pf, lpt_assignment(w, pf, 4)).makespan()
            if lpt <= rr * (1 + 1e-12):
                wins += 1
        assert wins >= 6

    def test_refined_never_worse_than_lpt(self, pf):
        for seed in range(5):
            w = npb_synth(12, np.random.default_rng(seed))
            lpt = schedule_cluster(w, pf, lpt_assignment(w, pf, 3)).makespan()
            ref = schedule_cluster(w, pf, lpt_refined_assignment(w, pf, 3)).makespan()
            assert ref <= lpt * (1 + 1e-12)

    def test_single_node_is_single_schedule(self, wl, pf):
        a = lpt_refined_assignment(wl, pf, 1)
        assert np.all(a == 0)

    def test_rejects_zero_nodes(self, wl, pf):
        with pytest.raises(ModelError):
            lpt_assignment(wl, pf, 0)


class TestClusterSchedule:
    def test_makespan_is_max_node(self, wl, pf):
        cs = schedule_cluster(wl, pf, lpt_assignment(wl, pf, 3))
        assert cs.makespan() == pytest.approx(cs.node_makespans().max())

    def test_empty_node_allowed(self, wl, pf):
        a = np.zeros(12, dtype=np.intp)
        a[0] = 2  # node 1 stays empty
        cs = schedule_cluster(wl, pf, a)
        assert cs.node_schedules[1] is None
        assert cs.node_makespans()[1] == 0.0

    def test_describe_lists_nodes(self, wl, pf):
        cs = schedule_cluster(wl, pf, lpt_assignment(wl, pf, 2))
        text = cs.describe()
        assert "node 0" in text and "node 1" in text

    def test_wrong_assignment_shape(self, wl, pf):
        with pytest.raises(ModelError):
            schedule_cluster(wl, pf, np.zeros(5, dtype=np.intp))

    def test_negative_node_rejected(self, wl, pf):
        a = np.zeros(12, dtype=np.intp)
        a[3] = -1
        with pytest.raises(ModelError):
            schedule_cluster(wl, pf, a)

    def test_custom_node_scheduler(self, wl, pf):
        from repro.core import get_scheduler

        zero = lambda w, p: get_scheduler("0cache")(w, p, None)  # noqa: E731
        cs = schedule_cluster(wl, pf, lpt_assignment(wl, pf, 2), node_scheduler=zero)
        for s in cs.node_schedules:
            assert np.all(s.cache == 0.0)

    def test_imbalance_bounds(self, wl, pf):
        cs = schedule_cluster(wl, pf, lpt_refined_assignment(wl, pf, 3))
        assert 0.0 <= cs.imbalance() < 1.0


class TestExhaustive:
    def test_matches_or_beats_heuristics(self, pf):
        for seed in range(3):
            w = npb_synth(7, np.random.default_rng(seed))
            _, best = exhaustive_assignment(w, pf, 2)
            ref = schedule_cluster(w, pf, lpt_refined_assignment(w, pf, 2)).makespan()
            assert best <= ref * (1 + 1e-9)

    def test_one_node_trivial(self, pf, rng):
        w = npb_synth(4, rng)
        a, span = exhaustive_assignment(w, pf, 1)
        assert np.all(a == 0)
        assert span == pytest.approx(schedule_cluster(w, pf, a).makespan())

    def test_size_limit(self, pf, rng):
        with pytest.raises(ModelError):
            exhaustive_assignment(npb_synth(13, rng), pf, 2)

    def test_more_nodes_never_hurt(self, pf, rng):
        w = npb_synth(6, rng)
        spans = [exhaustive_assignment(w, pf, k)[1] for k in (1, 2, 3)]
        assert spans[1] <= spans[0] * (1 + 1e-9)
        assert spans[2] <= spans[1] * (1 + 1e-9)
