"""Tests for the remaining-work equal-finish allocator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.online import remaining_equal_finish
from repro.types import ModelError


class TestRemainingEqualFinish:
    def test_fresh_apps_match_offline(self):
        """With nothing executed, the solver matches the offline one."""
        from repro.core.execution import access_cost_factor
        from repro.core.processor_allocation import equal_finish_allocation
        from repro.machine import taihulight
        from repro.workloads import npb_synth

        pf = taihulight()
        wl = npb_synth(8, np.random.default_rng(0))
        x = np.zeros(8)
        off_procs, off_k = equal_finish_allocation(wl, pf, x)
        factors = access_cost_factor(wl, pf, x)
        on_procs, on_k = remaining_equal_finish(
            wl.seq * wl.work, (1 - wl.seq) * wl.work, factors, pf.p
        )
        assert on_k == pytest.approx(off_k, rel=1e-6)
        assert np.allclose(on_procs, off_procs, rtol=1e-5)

    def test_equal_finish_property(self):
        seq = np.array([100.0, 0.0, 50.0])
        par = np.array([1000.0, 2000.0, 500.0])
        fac = np.array([1.2, 1.5, 1.1])
        procs, K = remaining_equal_finish(seq, par, fac, 16.0)
        times = fac * (seq + par / procs)
        assert np.allclose(times, K, rtol=1e-6)
        assert procs.sum() <= 16.0 * (1 + 1e-9)

    def test_budget_tight_when_binding(self):
        par = np.array([1000.0, 2000.0])
        procs, _ = remaining_equal_finish(np.zeros(2), par, np.ones(2), 8.0)
        assert procs.sum() == pytest.approx(8.0)

    def test_only_sequential_tails(self):
        procs, K = remaining_equal_finish(
            np.array([10.0, 20.0]), np.zeros(2), np.ones(2), 4.0
        )
        assert K == pytest.approx(20.0)
        assert np.all(procs > 0)

    def test_progress_shifts_processors(self):
        """An app with less work left needs (and gets) fewer processors."""
        par_even = np.array([1000.0, 1000.0])
        p_even, _ = remaining_equal_finish(np.zeros(2), par_even, np.ones(2), 8.0)
        par_skew = np.array([200.0, 1000.0])
        p_skew, _ = remaining_equal_finish(np.zeros(2), par_skew, np.ones(2), 8.0)
        assert p_skew[0] < p_even[0]
        assert p_skew[1] > p_even[1]

    def test_validation(self):
        with pytest.raises(ModelError):
            remaining_equal_finish([1.0], [1.0, 2.0], [1.0], 4.0)
        with pytest.raises(ModelError):
            remaining_equal_finish([0.0], [0.0], [1.0], 4.0)  # finished app
        with pytest.raises(ModelError):
            remaining_equal_finish([1.0], [1.0], [0.0], 4.0)  # zero factor
        with pytest.raises(ModelError):
            remaining_equal_finish([1.0], [1.0], [1.0], 0.0)
