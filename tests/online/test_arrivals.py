"""Tests for the arrival-source module."""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine import taihulight
from repro.online import simulate_online
from repro.online.arrivals import (
    BatchSource,
    ConstantRate,
    PoissonProcess,
    TraceSource,
    parse_arrival_spec,
)
from repro.types import ModelError
from repro.workloads import npb_synth


class TestBatchSource:
    def test_default_is_time_zero(self, rng):
        assert np.array_equal(BatchSource().times(4, rng), np.zeros(4))

    def test_shifted_cohort(self, rng):
        assert np.array_equal(BatchSource(at=3.5).times(3, rng), np.full(3, 3.5))

    def test_rejects_negative_instant(self):
        with pytest.raises(ModelError):
            BatchSource(at=-1.0)


class TestConstantRate:
    def test_evenly_spaced(self, rng):
        t = ConstantRate(period=10.0, start=5.0).times(4, rng)
        assert np.array_equal(t, [5.0, 15.0, 25.0, 35.0])

    def test_deterministic_ignores_rng(self):
        a = ConstantRate(period=2.0).times(5, np.random.default_rng(1))
        b = ConstantRate(period=2.0).times(5, np.random.default_rng(2))
        assert np.array_equal(a, b)

    def test_rejects_bad_period(self):
        with pytest.raises(ModelError):
            ConstantRate(period=0.0)


class TestPoissonProcess:
    def test_seeded_stream_reproducible(self):
        src = PoissonProcess(rate=0.5)
        a = src.times(50, np.random.default_rng(9))
        b = src.times(50, np.random.default_rng(9))
        assert np.array_equal(a, b)
        assert np.array_equal(np.sort(a), a)
        assert np.all(a > 0)

    def test_homogeneous_mean_gap(self):
        """Inter-arrival mean ~ 1/rate (law of large numbers)."""
        src = PoissonProcess(rate=2.0)
        t = src.times(4000, np.random.default_rng(3))
        gaps = np.diff(t)
        assert np.mean(gaps) == pytest.approx(0.5, rel=0.1)

    def test_thinning_slows_the_stream(self):
        """An inhomogeneous process (peak rate R) is sparser than the
        homogeneous process at rate R: thinning only removes points."""
        n = 2000
        homo = PoissonProcess(rate=1.0).times(n, np.random.default_rng(4))
        inhomo = PoissonProcess(rate=1.0, burst=0.9, period=50.0).times(
            n, np.random.default_rng(4))
        assert inhomo[-1] > homo[-1]

    def test_intensity_peaks_at_rate(self):
        src = PoissonProcess(rate=2.0, burst=0.5, period=4.0)
        # sin peaks at period/4
        assert src.intensity(1.0) == pytest.approx(2.0)
        assert src.intensity(3.0) == pytest.approx(2.0 * 0.5 / 1.5)

    def test_bursty_arrivals_cluster(self):
        """The modulated stream has burstier gaps: higher gap CV than
        the homogeneous exponential (CV ~ 1)."""
        rng = np.random.default_rng(11)
        t = PoissonProcess(rate=1.0, burst=0.95, period=200.0).times(3000, rng)
        gaps = np.diff(t)
        cv = np.std(gaps) / np.mean(gaps)
        assert cv > 1.1

    def test_validation(self):
        with pytest.raises(ModelError):
            PoissonProcess(rate=0.0)
        with pytest.raises(ModelError):
            PoissonProcess(rate=1.0, burst=1.0)
        with pytest.raises(ModelError):
            PoissonProcess(rate=1.0, burst=0.5)  # inf period


class TestTraceSource:
    def test_replay(self, tmp_path, rng):
        trace = tmp_path / "arrivals.txt"
        trace.write_text("# recorded arrivals\n0.0\n1.5\n\n2.5  # third\n9\n")
        t = TraceSource(trace).times(3, rng)
        assert np.array_equal(t, [0.0, 1.5, 2.5])

    def test_too_short(self, tmp_path, rng):
        trace = tmp_path / "short.txt"
        trace.write_text("1.0\n")
        with pytest.raises(ModelError, match="holds 1 arrivals; 3 needed"):
            TraceSource(trace).times(3, rng)

    def test_unsorted_rejected(self, tmp_path, rng):
        trace = tmp_path / "bad.txt"
        trace.write_text("2.0\n1.0\n")
        with pytest.raises(ModelError, match="nondecreasing"):
            TraceSource(trace).times(2, rng)

    def test_unparseable_line(self, tmp_path, rng):
        trace = tmp_path / "bad.txt"
        trace.write_text("1.0\nnope\n")
        with pytest.raises(ModelError, match="bad.txt:2"):
            TraceSource(trace).times(2, rng)

    def test_missing_file(self, rng, tmp_path):
        with pytest.raises(ModelError, match="cannot read"):
            TraceSource(tmp_path / "absent.txt").times(1, rng)


class TestParseArrivalSpec:
    @pytest.mark.parametrize("spec, kind", [
        ("batch", BatchSource),
        ("batch:at=2.5", BatchSource),
        ("constant:period=10", ConstantRate),
        ("constant:period=10,start=3", ConstantRate),
        ("poisson:rate=0.5", PoissonProcess),
        ("poisson:rate=0.5,burst=0.8,period=100", PoissonProcess),
        ("trace:/tmp/foo.txt", TraceSource),
    ])
    def test_kinds(self, spec, kind):
        assert isinstance(parse_arrival_spec(spec), kind)

    def test_fields_land(self):
        src = parse_arrival_spec("poisson:rate=0.25,burst=0.5,period=40")
        assert (src.rate, src.burst, src.period) == (0.25, 0.5, 40.0)

    @pytest.mark.parametrize("spec", [
        "rain", "constant", "constant:period=", "poisson",
        "poisson:rate=fast", "poisson:rate=1,shape=2", "trace", "trace:",
    ])
    def test_rejected(self, spec):
        with pytest.raises(ModelError):
            parse_arrival_spec(spec)


class TestEndToEnd:
    def test_poisson_stream_through_engine(self, rng):
        """A generated stream drives the online engine end to end,
        reproducibly."""
        wl = npb_synth(6, rng)
        pf = taihulight()
        src = parse_arrival_spec("poisson:rate=5e-9")
        arr = src.times(6, np.random.default_rng(0))
        a = simulate_online(wl, pf, arr, policy="fair")
        b = simulate_online(wl, pf, src.times(6, np.random.default_rng(0)),
                            policy="fair")
        assert np.array_equal(a.finish_times, b.finish_times)
        assert np.all(a.finish_times > a.arrival_times)
