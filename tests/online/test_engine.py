"""Tests for the online arrival engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import get_scheduler
from repro.machine import taihulight
from repro.online import simulate_online
from repro.types import ModelError
from repro.workloads import npb_synth


@pytest.fixture
def pf():
    return taihulight()


@pytest.fixture
def wl(rng):
    return npb_synth(10, rng)


class TestBatchArrivals:
    def test_dominant_matches_offline(self, wl, pf):
        """Everyone at t=0: the online dominant policy reproduces the
        offline heuristic's makespan (tiny improvement allowed - it may
        re-equalize at phase boundaries)."""
        res = simulate_online(wl, pf, np.zeros(10), policy="dominant")
        off = get_scheduler("dominant-minratio")(wl, pf, None).makespan()
        assert res.makespan == pytest.approx(off, rel=1e-3)
        assert res.makespan <= off * (1 + 1e-9)

    def test_fcfs_matches_allproccache(self, wl, pf):
        res = simulate_online(wl, pf, np.zeros(10), policy="fcfs")
        apc = get_scheduler("allproccache")(wl, pf, None).makespan()
        assert res.makespan == pytest.approx(apc, rel=1e-9)

    def test_flow_equals_finish_at_zero_arrivals(self, wl, pf):
        res = simulate_online(wl, pf, np.zeros(10), policy="fair")
        assert np.allclose(res.flow_times, res.finish_times)


class TestIdenticalArrivals:
    """Every application arrives at the same (possibly nonzero) instant.

    Simultaneous arrivals exercise the event loop's tie handling: one
    arrival event must admit the whole cohort, not one app per event.
    """

    def test_shifted_cohort_matches_offline_plus_offset(self, wl, pf):
        """Arrivals all at t0 > 0: the machine idles to t0, then the
        run is exactly the all-at-zero one shifted by t0."""
        t0 = 1e9
        shifted = simulate_online(wl, pf, np.full(10, t0), policy="dominant")
        base = simulate_online(wl, pf, np.zeros(10), policy="dominant")
        assert np.allclose(shifted.finish_times, base.finish_times + t0,
                           rtol=1e-9)
        assert shifted.makespan == pytest.approx(base.makespan + t0, rel=1e-9)

    def test_flow_times_unchanged_by_shift(self, wl, pf):
        t0 = 3.7e8
        shifted = simulate_online(wl, pf, np.full(10, t0), policy="fair")
        base = simulate_online(wl, pf, np.zeros(10), policy="fair")
        assert np.allclose(shifted.flow_times, base.flow_times, rtol=1e-9)

    def test_single_arrival_event_admits_whole_cohort(self, wl, pf):
        """One arrival event admits the whole simultaneous cohort: the
        shifted run costs exactly as many events as the t=0 run (both
        spend one admission step), not one event per application."""
        t0 = 1e9
        base = simulate_online(wl, pf, np.zeros(10), policy="dominant")
        shifted = simulate_online(wl, pf, np.full(10, t0), policy="dominant")
        assert shifted.events == base.events
        assert shifted.events < 2 * 10  # far below one event per app pair

    def test_fcfs_ties_broken_by_index(self, pf, rng):
        """With identical arrivals the fcfs order falls back to input
        order (stable argsort), so completion order is index order."""
        wl = npb_synth(5, rng)
        res = simulate_online(wl, pf, np.full(5, 1e8), policy="fcfs")
        order = np.argsort(res.finish_times)
        assert list(order) == list(range(5))

    @pytest.mark.parametrize("policy", ["dominant", "fair", "fcfs",
                                        "dominant-minratio"])
    def test_all_policies_complete_identical_arrivals(self, wl, pf, policy):
        res = simulate_online(wl, pf, np.full(10, 5e8), policy=policy)
        assert np.all(res.finish_times > res.arrival_times)
        assert res.makespan > 5e8

    def test_two_simultaneous_waves(self, pf, rng):
        """Two cohorts, each internally simultaneous."""
        wl = npb_synth(8, rng)
        arrivals = np.array([0.0] * 4 + [1e9] * 4)
        res = simulate_online(wl, pf, arrivals, policy="dominant")
        assert np.all(res.finish_times > res.arrival_times)
        # the late wave cannot finish before it arrives
        assert np.all(res.finish_times[4:] > 1e9)


class TestStaggeredArrivals:
    @pytest.fixture
    def arrivals(self, wl, pf):
        base = get_scheduler("dominant-minratio")(wl, pf, None).makespan()
        rng = np.random.default_rng(3)
        return np.sort(rng.uniform(0, base, size=10))

    def test_finish_after_arrival(self, wl, pf, arrivals):
        for policy in ("dominant", "fair", "fcfs"):
            res = simulate_online(wl, pf, arrivals, policy=policy)
            assert np.all(res.finish_times > res.arrival_times)

    def test_dominant_beats_fcfs_makespan(self, wl, pf, arrivals):
        dom = simulate_online(wl, pf, arrivals, policy="dominant")
        fcfs = simulate_online(wl, pf, arrivals, policy="fcfs")
        assert dom.makespan < fcfs.makespan

    def test_fair_sharing_helps_flow_time(self, wl, pf, arrivals):
        """Documented finding: Lemma 1's equal-finish property is an
        *offline* makespan principle; applied naively online it ties
        short jobs to long ones, so Fair wins on mean flow."""
        dom = simulate_online(wl, pf, arrivals, policy="dominant")
        fair = simulate_online(wl, pf, arrivals, policy="fair")
        assert fair.mean_flow < dom.mean_flow

    def test_late_arrival_idles_machine(self, pf, rng):
        wl = npb_synth(2, rng)
        solo = simulate_online(wl[:1], pf, np.zeros(1), policy="dominant")
        gap = 2 * solo.makespan
        res = simulate_online(wl, pf, np.array([0.0, gap]), policy="dominant")
        # second app starts only at its arrival
        assert res.finish_times[1] > gap

    def test_event_budget(self, wl, pf, arrivals):
        with pytest.raises(ModelError):
            simulate_online(wl, pf, arrivals, policy="dominant", max_events=2)

    def test_unknown_policy(self, wl, pf):
        with pytest.raises(ModelError):
            simulate_online(wl, pf, np.zeros(10), policy="lifo")

    def test_shape_validation(self, wl, pf):
        with pytest.raises(ModelError):
            simulate_online(wl, pf, np.zeros(3))
        with pytest.raises(ModelError):
            simulate_online(wl, pf, -np.ones(10))


class TestRegistryPolicies:
    """Any registered concurrent scheduler can drive the online loop."""

    def test_registry_dominant_close_to_builtin(self, wl, pf):
        reg = simulate_online(wl, pf, np.zeros(10), policy="dominant-minratio")
        builtin = simulate_online(wl, pf, np.zeros(10), policy="dominant")
        assert reg.makespan == pytest.approx(builtin.makespan, rel=1e-3)

    def test_randomized_policy_uses_rng(self, wl, pf):
        a = simulate_online(wl, pf, np.zeros(10), policy="randompart",
                            rng=np.random.default_rng(1))
        b = simulate_online(wl, pf, np.zeros(10), policy="randompart",
                            rng=np.random.default_rng(2))
        assert a.makespan != b.makespan

    def test_staggered_arrivals_complete(self, wl, pf):
        arrivals = np.linspace(0.0, 1e10, 10)
        res = simulate_online(wl, pf, arrivals, policy="dominant-maxratio")
        assert np.all(res.finish_times > res.arrival_times)

    def test_sequential_policy_rejected(self, wl, pf):
        with pytest.raises(ModelError):
            simulate_online(wl, pf, np.zeros(10), policy="allproccache")

    def test_unknown_policy_error_names_builtins(self, wl, pf):
        with pytest.raises(ModelError, match="dominant, fair, fcfs"):
            simulate_online(wl, pf, np.zeros(10), policy="dominannt")
