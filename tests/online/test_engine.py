"""Tests for the online arrival engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Application, Workload, get_entry, get_scheduler, scheduler_names
from repro.machine import taihulight
from repro.online import simulate_online
from repro.simulate import simulate_schedule
from repro.types import ModelError
from repro.workloads import npb_synth, random_workload


@pytest.fixture
def pf():
    return taihulight()


@pytest.fixture
def wl(rng):
    return npb_synth(10, rng)


class TestBatchArrivals:
    def test_dominant_matches_offline(self, wl, pf):
        """Everyone at t=0: the online dominant policy reproduces the
        offline heuristic's makespan (tiny improvement allowed - it may
        re-equalize at phase boundaries)."""
        res = simulate_online(wl, pf, np.zeros(10), policy="dominant")
        off = get_scheduler("dominant-minratio")(wl, pf, None).makespan()
        assert res.makespan == pytest.approx(off, rel=1e-3)
        assert res.makespan <= off * (1 + 1e-9)

    def test_fcfs_matches_allproccache(self, wl, pf):
        res = simulate_online(wl, pf, np.zeros(10), policy="fcfs")
        apc = get_scheduler("allproccache")(wl, pf, None).makespan()
        assert res.makespan == pytest.approx(apc, rel=1e-9)

    def test_flow_equals_finish_at_zero_arrivals(self, wl, pf):
        res = simulate_online(wl, pf, np.zeros(10), policy="fair")
        assert np.allclose(res.flow_times, res.finish_times)


class TestIdenticalArrivals:
    """Every application arrives at the same (possibly nonzero) instant.

    Simultaneous arrivals exercise the event loop's tie handling: one
    arrival event must admit the whole cohort, not one app per event.
    """

    def test_shifted_cohort_matches_offline_plus_offset(self, wl, pf):
        """Arrivals all at t0 > 0: the machine idles to t0, then the
        run is exactly the all-at-zero one shifted by t0."""
        t0 = 1e9
        shifted = simulate_online(wl, pf, np.full(10, t0), policy="dominant")
        base = simulate_online(wl, pf, np.zeros(10), policy="dominant")
        assert np.allclose(shifted.finish_times, base.finish_times + t0,
                           rtol=1e-9)
        assert shifted.makespan == pytest.approx(base.makespan + t0, rel=1e-9)

    def test_flow_times_unchanged_by_shift(self, wl, pf):
        t0 = 3.7e8
        shifted = simulate_online(wl, pf, np.full(10, t0), policy="fair")
        base = simulate_online(wl, pf, np.zeros(10), policy="fair")
        assert np.allclose(shifted.flow_times, base.flow_times, rtol=1e-9)

    def test_single_arrival_event_admits_whole_cohort(self, wl, pf):
        """One arrival event admits the whole simultaneous cohort: the
        shifted run costs exactly as many events as the t=0 run (both
        spend one admission step), not one event per application."""
        t0 = 1e9
        base = simulate_online(wl, pf, np.zeros(10), policy="dominant")
        shifted = simulate_online(wl, pf, np.full(10, t0), policy="dominant")
        assert shifted.events == base.events
        assert shifted.events < 2 * 10  # far below one event per app pair

    def test_fcfs_ties_broken_by_index(self, pf, rng):
        """With identical arrivals the fcfs order falls back to input
        order (stable argsort), so completion order is index order."""
        wl = npb_synth(5, rng)
        res = simulate_online(wl, pf, np.full(5, 1e8), policy="fcfs")
        order = np.argsort(res.finish_times)
        assert list(order) == list(range(5))

    @pytest.mark.parametrize("policy", ["dominant", "fair", "fcfs",
                                        "dominant-minratio"])
    def test_all_policies_complete_identical_arrivals(self, wl, pf, policy):
        res = simulate_online(wl, pf, np.full(10, 5e8), policy=policy)
        assert np.all(res.finish_times > res.arrival_times)
        assert res.makespan > 5e8

    def test_two_simultaneous_waves(self, pf, rng):
        """Two cohorts, each internally simultaneous."""
        wl = npb_synth(8, rng)
        arrivals = np.array([0.0] * 4 + [1e9] * 4)
        res = simulate_online(wl, pf, arrivals, policy="dominant")
        assert np.all(res.finish_times > res.arrival_times)
        # the late wave cannot finish before it arrives
        assert np.all(res.finish_times[4:] > 1e9)


class TestStaggeredArrivals:
    @pytest.fixture
    def arrivals(self, wl, pf):
        base = get_scheduler("dominant-minratio")(wl, pf, None).makespan()
        rng = np.random.default_rng(3)
        return np.sort(rng.uniform(0, base, size=10))

    def test_finish_after_arrival(self, wl, pf, arrivals):
        for policy in ("dominant", "fair", "fcfs"):
            res = simulate_online(wl, pf, arrivals, policy=policy)
            assert np.all(res.finish_times > res.arrival_times)

    def test_dominant_beats_fcfs_makespan(self, wl, pf, arrivals):
        dom = simulate_online(wl, pf, arrivals, policy="dominant")
        fcfs = simulate_online(wl, pf, arrivals, policy="fcfs")
        assert dom.makespan < fcfs.makespan

    def test_fair_sharing_helps_flow_time(self, wl, pf, arrivals):
        """Documented finding: Lemma 1's equal-finish property is an
        *offline* makespan principle; applied naively online it ties
        short jobs to long ones, so Fair wins on mean flow."""
        dom = simulate_online(wl, pf, arrivals, policy="dominant")
        fair = simulate_online(wl, pf, arrivals, policy="fair")
        assert fair.mean_flow < dom.mean_flow

    def test_late_arrival_idles_machine(self, pf, rng):
        wl = npb_synth(2, rng)
        solo = simulate_online(wl[:1], pf, np.zeros(1), policy="dominant")
        gap = 2 * solo.makespan
        res = simulate_online(wl, pf, np.array([0.0, gap]), policy="dominant")
        # second app starts only at its arrival
        assert res.finish_times[1] > gap

    def test_event_budget(self, wl, pf, arrivals):
        with pytest.raises(ModelError):
            simulate_online(wl, pf, arrivals, policy="dominant", max_events=2)

    def test_unknown_policy(self, wl, pf):
        with pytest.raises(ModelError):
            simulate_online(wl, pf, np.zeros(10), policy="lifo")

    def test_shape_validation(self, wl, pf):
        with pytest.raises(ModelError):
            simulate_online(wl, pf, np.zeros(3))
        with pytest.raises(ModelError):
            simulate_online(wl, pf, -np.ones(10))


class TestArrivalAdmission:
    """The kernel's combined abs+rel admission tolerance.

    The historical check was relative-only (``arrivals <= now * (1 +
    eps)``): it admitted nothing early at ``now == 0`` except by the
    accident of a ``+ 1e-300`` term, and drifted at large ``now``.
    """

    def test_arrival_coinciding_with_completion(self, pf):
        """Regression: an arrival at *exactly* a completion instant is
        admitted at that event, not stranded until a later one."""
        wl = Workload([
            Application(name="a", work=1e9, access_freq=0.5, miss_rate=0.01),
            Application(name="b", work=2e9, access_freq=0.8, miss_rate=0.005),
        ])
        solo = simulate_online(wl[:1], pf, np.zeros(1), policy="fair")
        t_done = float(solo.finish_times[0])
        res = simulate_online(wl, pf, np.array([0.0, t_done]), policy="fair")
        # app 0's run is undisturbed...
        assert res.finish_times[0] == pytest.approx(t_done, rel=1e-12)
        # ...and app 1 starts the moment app 0 completes: its flow time
        # equals its solo whole-machine time, with no idle gap.
        solo_b = simulate_online(wl[1:], pf, np.zeros(1), policy="fair")
        assert res.finish_times[1] - t_done == pytest.approx(
            float(solo_b.finish_times[0]), rel=1e-9)
        # the coinciding arrival is admitted inside the completion
        # event itself: admit-a, run-a (admits b at a's completion),
        # run-b — no fourth event for a separate arrival segment
        assert res.events == 3

    def test_admission_at_time_zero_has_absolute_floor(self, pf, rng):
        """An arrival within the absolute tolerance of t=0 joins the
        t=0 cohort (the relative-only check degenerated here)."""
        wl = npb_synth(2, rng)
        res = simulate_online(wl, pf, np.array([0.0, 1e-13]), policy="fair")
        base = simulate_online(wl, pf, np.zeros(2), policy="fair")
        assert np.allclose(res.finish_times, base.finish_times, rtol=1e-9)
        assert res.events == base.events

    def test_late_arrival_not_over_admitted(self, pf, rng):
        """An arrival clearly beyond the tolerance window of the first
        completion is not admitted early: it still starts at its own
        arrival instant."""
        wl = npb_synth(2, rng)
        solo = simulate_online(wl[:1], pf, np.zeros(1), policy="dominant")
        t_done = float(solo.finish_times[0])
        late = t_done * (1 + 1e-6)
        res = simulate_online(wl, pf, np.array([0.0, late]), policy="dominant")
        assert res.finish_times[1] > late


class TestOfflineEquivalenceProperty:
    """All arrivals at t=0: the online loop against the offline model."""

    @pytest.mark.parametrize("seed", range(3))
    def test_every_registered_concurrent_scheduler(self, pf, seed):
        """Property sweep: online-at-zero never finishes any app later
        than the static offline schedule (re-solving the shrinking
        instance only helps), and equal-finish strategies reproduce
        the offline finish times themselves."""
        rng = np.random.default_rng(seed)
        wl = (npb_synth if seed % 2 else random_workload)(6, rng)
        zeros = np.zeros(6)
        checked = 0
        for name in scheduler_names():
            entry = get_entry(name)
            schedule = entry(wl, pf, np.random.default_rng(seed))
            if not schedule.concurrent or entry.randomized:
                continue
            off = simulate_schedule(schedule).finish_times
            on = simulate_online(wl, pf, zeros, policy=name).finish_times
            assert np.all(on <= off * (1 + 1e-9)), name
            times = schedule.times()
            if np.ptp(times) <= 1e-9 * times.max():  # equal-finish
                assert np.allclose(on, off, rtol=1e-3), name
            checked += 1
        assert checked >= 8  # the sweep actually covered the registry

    def test_fair_policy_zero_frequency_workload(self, pf):
        """No application accesses memory: the fair cache split falls
        back to 1/n and the run completes (regression for the
        zero-total-frequency branch)."""
        wl = Workload([
            Application(name=f"cpu{i}", work=(i + 1) * 1e9, access_freq=0.0,
                        miss_rate=0.0)
            for i in range(4)
        ])
        res = simulate_online(wl, pf, np.zeros(4), policy="fair")
        assert np.all(res.finish_times > 0)
        # freq 0 means factor 1; fair re-splits p over the survivors at
        # each completion, so the finishes cascade in work order
        expected = []
        t = prev = 0.0
        for k, w in enumerate(np.sort(wl.work)):
            t += (w - prev) / (pf.p / (4 - k))
            prev = w
            expected.append(t)
        assert np.allclose(res.finish_times, expected, rtol=1e-9)


class TestRegistryPolicies:
    """Any registered concurrent scheduler can drive the online loop."""

    def test_registry_dominant_close_to_builtin(self, wl, pf):
        reg = simulate_online(wl, pf, np.zeros(10), policy="dominant-minratio")
        builtin = simulate_online(wl, pf, np.zeros(10), policy="dominant")
        assert reg.makespan == pytest.approx(builtin.makespan, rel=1e-3)

    def test_randomized_policy_uses_rng(self, wl, pf):
        a = simulate_online(wl, pf, np.zeros(10), policy="randompart",
                            rng=np.random.default_rng(1))
        b = simulate_online(wl, pf, np.zeros(10), policy="randompart",
                            rng=np.random.default_rng(2))
        assert a.makespan != b.makespan

    def test_staggered_arrivals_complete(self, wl, pf):
        arrivals = np.linspace(0.0, 1e10, 10)
        res = simulate_online(wl, pf, arrivals, policy="dominant-maxratio")
        assert np.all(res.finish_times > res.arrival_times)

    def test_sequential_policy_rejected(self, wl, pf):
        with pytest.raises(ModelError):
            simulate_online(wl, pf, np.zeros(10), policy="allproccache")

    def test_unknown_policy_error_names_builtins(self, wl, pf):
        with pytest.raises(ModelError, match="dominant, fair, fcfs"):
            simulate_online(wl, pf, np.zeros(10), policy="dominannt")


class TestPublicTimelines:
    """OnlineResult exposes the kernel's usage timeline and event log."""

    def test_processor_usage_and_log(self, wl, pf):
        arrivals = np.linspace(0.0, 1e10, 10)
        res = simulate_online(wl, pf, arrivals, policy="dominant")
        assert res.processor_usage, "usage timeline must be populated"
        times = [t for t, _ in res.processor_usage]
        assert times == sorted(times)
        assert res.peak_processors <= pf.p * (1 + 1e-9)
        assert res.peak_processors == max(u for _, u in res.processor_usage)
        assert len(res.log.select("done")) == 10
        assert len(res.log.select("arrival")) == 10

    def test_work_conserving_policies_use_whole_machine(self, wl, pf):
        res = simulate_online(wl, pf, np.zeros(10), policy="fair")
        # the kernel takes one bootstrap sample before admitting the
        # t=0 arrivals; from then on every allocation uses the machine
        first, rest = res.processor_usage[0], res.processor_usage[1:]
        assert first == (0.0, 0.0)
        assert rest and all(u == pytest.approx(pf.p) for _, u in rest)

    def test_empty_result_peak_is_zero(self):
        from repro.online.engine import OnlineResult
        res = OnlineResult(arrival_times=np.zeros(1), finish_times=np.ones(1),
                           events=0, policy="x")
        assert res.peak_processors == 0.0
