"""Tests for the periodic in-situ analysis helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import get_scheduler
from repro.machine import taihulight
from repro.pipeline import (
    is_feasible,
    min_sustainable_period,
    required_processors,
    utilization,
)
from repro.types import ModelError, SolverError
from repro.workloads import npb_synth


@pytest.fixture
def pf():
    return taihulight()


@pytest.fixture
def wl(rng):
    return npb_synth(8, rng)


class TestMinPeriod:
    def test_equals_makespan(self, wl, pf):
        expected = get_scheduler("dominant-minratio")(wl, pf, None).makespan()
        assert min_sustainable_period(wl, pf) == pytest.approx(expected)

    def test_scheduler_matters(self, wl, pf):
        dom = min_sustainable_period(wl, pf)
        fair = min_sustainable_period(wl, pf, scheduler="fair")
        assert dom < fair

    def test_callable_scheduler(self, wl, pf):
        fn = get_scheduler("0cache")
        assert min_sustainable_period(wl, pf, scheduler=fn) == pytest.approx(
            fn(wl, pf, None).makespan()
        )


class TestFeasibility:
    def test_boundary(self, wl, pf):
        T = min_sustainable_period(wl, pf)
        assert is_feasible(T * 1.001, wl, pf)
        assert not is_feasible(T * 0.999, wl, pf)

    def test_utilization(self, wl, pf):
        T = min_sustainable_period(wl, pf)
        assert utilization(2 * T, wl, pf) == pytest.approx(0.5)
        assert utilization(0.5 * T, wl, pf) == pytest.approx(2.0)

    def test_rejects_nonpositive_period(self, wl, pf):
        with pytest.raises(ModelError):
            is_feasible(0.0, wl, pf)
        with pytest.raises(ModelError):
            utilization(-1.0, wl, pf)


class TestRequiredProcessors:
    def test_meets_period(self, wl, pf):
        T = min_sustainable_period(wl, pf)
        p = required_processors(2 * T, wl, pf)
        assert p < pf.p  # a laxer deadline needs fewer processors
        achieved = min_sustainable_period(wl, pf.with_processors(p))
        assert achieved <= 2 * T * (1 + 1e-4)

    def test_minimality(self, wl, pf):
        T = min_sustainable_period(wl, pf)
        p = required_processors(2 * T, wl, pf)
        too_few = min_sustainable_period(wl, pf.with_processors(p * 0.9))
        assert too_few > 2 * T

    def test_tight_period_needs_more(self, pf, rng):
        # Perfectly parallel kernels: any period is reachable with
        # enough processors (no Amdahl floor).
        wl = npb_synth(8, rng, seq_range=None)
        T = min_sustainable_period(wl, pf)
        p_more = required_processors(T * 0.8, wl, pf)
        assert p_more > pf.p
        achieved = min_sustainable_period(wl, pf.with_processors(p_more))
        assert achieved <= T * 0.8 * (1 + 1e-4)

    def test_unreachable_period(self, wl, pf):
        """Amdahl bounds: no processor count makes the makespan ~0."""
        with pytest.raises(SolverError):
            required_processors(1.0, wl, pf, p_max=1e5)
