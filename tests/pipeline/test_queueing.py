"""Tests for the batch-queue simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pipeline import jittered_arrivals, simulate_batch_queue
from repro.types import ModelError


class TestJitteredArrivals:
    def test_regular_without_jitter(self, rng):
        arr = jittered_arrivals(5, 10.0, rng)
        assert np.allclose(arr, [0, 10, 20, 30, 40])

    def test_jitter_keeps_order(self, rng):
        arr = jittered_arrivals(200, 1.0, rng, jitter=0.4)
        assert np.all(np.diff(arr) >= 0)
        assert arr[0] >= 0

    def test_rejects_bad_args(self, rng):
        with pytest.raises(ModelError):
            jittered_arrivals(0, 1.0, rng)
        with pytest.raises(ModelError):
            jittered_arrivals(5, 0.0, rng)
        with pytest.raises(ModelError):
            jittered_arrivals(5, 1.0, rng, jitter=0.6)


class TestQueue:
    def test_underloaded_no_queueing(self):
        arr = np.arange(10) * 10.0
        stats = simulate_batch_queue(arr, np.full(10, 5.0))
        assert stats.completed == 10
        assert stats.dropped == 0
        assert stats.max_queue_depth == 0
        assert np.allclose(stats.latencies, 5.0)

    def test_critically_loaded(self):
        """Service == period: back-to-back, zero waiting."""
        arr = np.arange(10) * 5.0
        stats = simulate_batch_queue(arr, np.full(10, 5.0))
        assert stats.dropped == 0
        assert np.allclose(stats.latencies, 5.0)

    def test_overloaded_infinite_buffer_latency_grows(self):
        arr = np.arange(50) * 4.0
        stats = simulate_batch_queue(arr, np.full(50, 5.0))
        assert stats.dropped == 0
        assert stats.latencies[-1] > stats.latencies[0]
        # batch k waits (5-4)*k: linear divergence
        assert stats.latencies[-1] == pytest.approx(5.0 + 49 * 1.0)

    def test_overloaded_finite_buffer_drops(self):
        arr = np.arange(100) * 4.0
        stats = simulate_batch_queue(arr, np.full(100, 5.0), buffer_capacity=2)
        assert stats.dropped > 0
        assert stats.max_queue_depth <= 2 + 1  # transient count at arrival
        assert 0 < stats.drop_rate < 1

    def test_zero_buffer_strictest(self):
        arr = np.arange(10) * 4.0
        stats = simulate_batch_queue(arr, np.full(10, 5.0), buffer_capacity=0)
        # only batches arriving at a free server are admitted
        assert stats.completed + stats.dropped == 10
        assert stats.dropped >= 1

    def test_makespan_is_last_finish(self):
        stats = simulate_batch_queue([0.0, 1.0], [2.0, 2.0])
        assert stats.makespan == pytest.approx(4.0)

    def test_stats_properties(self):
        stats = simulate_batch_queue([0.0, 10.0], [1.0, 2.0])
        assert stats.mean_latency == pytest.approx(1.5)
        assert stats.p99_latency <= 2.0
        assert stats.drop_rate == 0.0

    def test_validation(self):
        with pytest.raises(ModelError):
            simulate_batch_queue([1.0, 0.5], [1.0, 1.0])  # decreasing arrivals
        with pytest.raises(ModelError):
            simulate_batch_queue([0.0], [0.0])  # zero service
        with pytest.raises(ModelError):
            simulate_batch_queue([], [])
        with pytest.raises(ModelError):
            simulate_batch_queue([0.0], [1.0], buffer_capacity=-1)

    def test_stability_theorem(self, rng):
        """Analytic condition: stable iff mean service < period."""
        period = 10.0
        arr = jittered_arrivals(300, period, rng, jitter=0.2)
        stable = simulate_batch_queue(arr, np.full(300, 8.0), buffer_capacity=5)
        unstable = simulate_batch_queue(arr, np.full(300, 12.0), buffer_capacity=5)
        assert stable.drop_rate == 0.0
        assert unstable.drop_rate > 0.1
