"""Async front end: golden equivalence with the threaded server.

Both front ends serve the same contract from the same
:class:`DecisionService` machinery; these tests drive them side by
side over a golden request suite (decisions, error shapes, metrics)
and exercise the async-only machinery (byte-level L0 cache, pipelined
connections, backpressure 503s).
"""

from __future__ import annotations

import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro.service import DecisionService, ServiceClient, ServiceError
from repro.service.aserver import AsyncServerThread
from repro.service.server import make_server


def _service() -> DecisionService:
    return DecisionService(cache_capacity=64, max_batch_size=8,
                           max_wait_ms=1.0, workers=2)


@pytest.fixture
def threaded_url():
    server = make_server(service=_service())
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    server.service.close()
    thread.join(5)


@pytest.fixture
def async_url():
    with AsyncServerThread(_service()) as server:
        yield server.url


def _post_raw(url: str, body: bytes) -> tuple[int, dict]:
    req = urllib.request.Request(
        url + "/v1/allocate", data=body,
        headers={"Content-Type": "application/json"}, method="POST")
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


GOLDEN_PAYLOADS = [
    {"applications": [{"work": 100.0}, {"work": 50.0, "miss_rate": 0.2}],
     "platform": "taihulight"},
    {"applications": [{"work": 200.0, "seq_fraction": 0.05}],
     "platform": "taihulight", "scheduler": "allproccache"},
    {"applications": [{"work": 80.0}, {"work": 90.0}, {"work": 70.0}],
     "platform": {"preset": "taihulight"}, "scheduler": "dominant-minratio"},
    {"applications": [{"work": 60.0}, {"work": 40.0}],
     "platform": "taihulight", "scheduler": "randompart", "seed": 7},
]

GOLDEN_ERRORS = [
    (b"{not json", 400),
    (json.dumps({"applications": [], "platform": "taihulight"}).encode(), 400),
    (json.dumps({"applications": [{"work": 1.0}],
                 "scheduler": "no-such"}).encode(), 400),
    (json.dumps({"applications": [{"work": -5.0}]}).encode(), 400),
]


class TestGoldenEquivalence:
    def test_decisions_match_threaded_server(self, threaded_url, async_url):
        for payload in GOLDEN_PAYLOADS:
            body = json.dumps(payload).encode()
            t_status, t_resp = _post_raw(threaded_url, body)
            a_status, a_resp = _post_raw(async_url, body)
            assert (t_status, a_status) == (200, 200)
            assert a_resp["decision"] == t_resp["decision"]
            assert a_resp["request_id"] == t_resp["request_id"]

    def test_error_shapes_match(self, threaded_url, async_url):
        for body, expected_status in GOLDEN_ERRORS:
            t_status, t_resp = _post_raw(threaded_url, body)
            a_status, a_resp = _post_raw(async_url, body)
            assert t_status == a_status == expected_status
            assert a_resp["error"] == t_resp["error"]

    def test_schedulers_endpoint_matches(self, threaded_url, async_url):
        t_list = ServiceClient(threaded_url).schedulers()
        a_list = ServiceClient(async_url).schedulers()
        assert a_list == t_list

    def test_unknown_endpoint_404(self, async_url):
        with pytest.raises(ServiceError) as info:
            ServiceClient(async_url)._call("/v2/allocate", b"{}")
        assert info.value.status == 404

    def test_healthz(self, async_url):
        assert ServiceClient(async_url).healthy()

    def test_empty_body_400(self, async_url):
        status, resp = _post_raw(async_url, b"")
        assert status == 400
        assert "empty" in resp["error"]


class TestAsyncServing:
    def test_repeat_is_cache_hit_with_fresh_latency(self, async_url):
        body = json.dumps(GOLDEN_PAYLOADS[0]).encode()
        _, first = _post_raw(async_url, body)
        _, second = _post_raw(async_url, body)
        _, third = _post_raw(async_url, body)
        assert not first["cache_hit"]
        assert second["cache_hit"] and third["cache_hit"]
        assert second["decision"] == first["decision"] == third["decision"]
        assert second["batch_size"] == 0 and not second["coalesced"]
        assert second["latency_ms"] > 0 and third["latency_ms"] > 0

    def test_bytecache_hits_count_in_metrics(self, async_url):
        client = ServiceClient(async_url)
        body = json.dumps(GOLDEN_PAYLOADS[2]).encode()
        for _ in range(4):
            _post_raw(async_url, body)
        metrics = client.metrics()
        assert metrics["decisions.total"] == 4
        assert metrics["decision_cache.hits"] == 3
        assert metrics["decision_cache.misses"] == 1
        assert metrics["latency.count"] == 4

    def test_metrics_text_has_histogram(self, async_url):
        with urllib.request.urlopen(async_url + "/metrics", timeout=30) as resp:
            text = resp.read().decode()
        assert "# TYPE repro_request_latency_seconds histogram" in text
        assert 'repro_request_latency_seconds_bucket{le="+Inf"}' in text
        assert "repro_request_latency_seconds_count" in text
        assert "repro_decisions_inflight" in text
        assert "repro_batcher_queue_depth" in text

    def test_pipelined_requests_answered_in_order(self, async_url):
        host, port = async_url.removeprefix("http://").split(":")
        bodies = [json.dumps(p).encode() for p in GOLDEN_PAYLOADS[:3]]
        wire = b"".join(
            b"POST /v1/allocate HTTP/1.1\r\nHost: t\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: " + str(len(b)).encode() + b"\r\n\r\n" + b
            for b in bodies)
        with socket.create_connection((host, int(port)), timeout=30) as sock:
            sock.sendall(wire)
            sock.settimeout(30)
            buf = b""
            responses = []
            while len(responses) < 3:
                chunk = sock.recv(65536)
                assert chunk, "connection closed early"
                buf += chunk
                while True:
                    head_end = buf.find(b"\r\n\r\n")
                    if head_end < 0:
                        break
                    head = buf[:head_end].lower()
                    idx = head.find(b"content-length:")
                    end = head.find(b"\r\n", idx)
                    length = int(head[idx + 15:end if end > 0 else None])
                    total = head_end + 4 + length
                    if len(buf) < total:
                        break
                    responses.append(json.loads(buf[head_end + 4:total]))
                    buf = buf[total:]
        # responses come back in request order, matched by fingerprint
        expected = [_post_raw(async_url, b)[1]["request_id"] for b in bodies]
        assert [r["request_id"] for r in responses] == expected

    def test_concurrent_clients(self, async_url):
        bodies = [json.dumps(p).encode() for p in GOLDEN_PAYLOADS]
        results = []
        lock = threading.Lock()

        def client(body):
            status, resp = _post_raw(async_url, body)
            with lock:
                results.append((status, resp["request_id"]))

        threads = [threading.Thread(target=client, args=(bodies[i % 4],))
                   for i in range(12)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(status == 200 for status, _ in results)
        assert len({rid for _, rid in results}) == 4


class TestBackpressure:
    @pytest.fixture
    def saturated_url(self):
        service = DecisionService(max_queue_depth=0, max_wait_ms=0.0)
        with AsyncServerThread(service) as server:
            yield server.url

    def test_503_with_retry_after(self, saturated_url):
        with pytest.raises(ServiceError) as info:
            ServiceClient(saturated_url).allocate(
                [{"work": 123.0}], "taihulight")
        assert info.value.status == 503
        assert info.value.retry_after_s is not None
        assert info.value.retry_after_s > 0

    def test_503_on_threaded_server_too(self):
        server = make_server(
            service=DecisionService(max_queue_depth=0, max_wait_ms=0.0))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            with pytest.raises(ServiceError) as info:
                ServiceClient(f"http://{host}:{port}").allocate(
                    [{"work": 321.0}], "taihulight")
            assert info.value.status == 503
            assert info.value.retry_after_s is not None
        finally:
            server.shutdown()
            server.server_close()
            server.service.close()
            thread.join(5)

    def test_rejections_counted(self, saturated_url):
        client = ServiceClient(saturated_url)
        for _ in range(3):
            with pytest.raises(ServiceError):
                client.allocate([{"work": 55.0}], "taihulight")
        assert client.metrics()["batcher.rejected"] == 3
