"""Backpressure and per-request error surfacing (batcher + dispatcher)."""

from __future__ import annotations

import dataclasses
import threading

import pytest

from repro.service.batcher import QueueFullError, RequestBatcher
from repro.service.dispatcher import Dispatcher, RequestError
from repro.service.protocol import AllocationRequest, request_from_payload
from repro.types import ModelError, ReproError


class TestQueueFullError:
    def test_attributes_and_message(self):
        exc = QueueFullError(depth=12, max_depth=12, retry_after_s=0.25)
        assert exc.depth == 12
        assert exc.max_depth == 12
        assert exc.retry_after_s == 0.25
        assert "12" in str(exc) and "retry" in str(exc)

    def test_is_model_error(self):
        # the HTTP layers treat ModelError as a client-visible failure
        assert issubclass(QueueFullError, ModelError)


class TestBatcherBackpressure:
    def test_submit_rejected_at_depth_limit(self):
        release = threading.Event()

        def evaluate(reqs):
            release.wait(10)
            return ["d"] * len(reqs)

        with RequestBatcher(evaluate, max_batch_size=1, max_wait_s=0.0,
                            max_queue_depth=2) as b:
            futures = [b.submit(f"r{i}", f"k{i}") for i in range(2)]
            # collector may have pulled one batch and be blocked in
            # evaluate; depth only drops after a batch completes, so a
            # third submit must shed.
            with pytest.raises(QueueFullError) as info:
                b.submit("r2", "k2")
            assert info.value.max_depth == 2
            assert info.value.retry_after_s >= 0.05
            release.set()
            for f in futures:
                assert f.result(timeout=10)[0] == "d"
        stats = b.stats()
        assert stats.rejected == 1
        assert stats.requests == 2

    def test_zero_depth_rejects_everything(self):
        with RequestBatcher(lambda reqs: ["d"] * len(reqs),
                            max_queue_depth=0) as b:
            for _ in range(3):
                with pytest.raises(QueueFullError):
                    b.submit("r", "k")
        assert b.stats().rejected == 3

    def test_depth_gauge_returns_to_zero(self):
        with RequestBatcher(lambda reqs: ["d"] * len(reqs),
                            max_batch_size=4, max_wait_s=0.0,
                            max_queue_depth=64) as b:
            futures = [b.submit(f"r{i}", f"k{i}") for i in range(8)]
            for f in futures:
                f.result(timeout=10)
            assert b.stats().queue_depth == 0

    def test_unbounded_by_default(self):
        with RequestBatcher(lambda reqs: ["d"] * len(reqs),
                            max_batch_size=64, max_wait_s=0.0) as b:
            futures = [b.submit(f"r{i}", f"k{i}") for i in range(100)]
            for f in futures:
                f.result(timeout=10)
        assert b.stats().rejected == 0

    def test_depth_validation(self):
        with pytest.raises(ModelError):
            RequestBatcher(lambda reqs: [], max_queue_depth=-1)


class TestKeyPassing:
    def test_keys_forwarded_to_willing_evaluator(self):
        seen = {}

        def evaluate(reqs, keys=None):
            seen["keys"] = list(keys)
            return ["d"] * len(reqs)

        with RequestBatcher(evaluate, max_batch_size=2, max_wait_s=30.0) as b:
            futures = [b.submit(f"r{i}", f"k{i}") for i in range(2)]
            for f in futures:
                f.result(timeout=10)
        assert seen["keys"] == ["k0", "k1"]

    def test_plain_evaluator_untouched(self):
        def evaluate(reqs):
            return ["d"] * len(reqs)

        with RequestBatcher(evaluate) as b:
            assert not b._evaluate_wants_keys
            assert b.submit("r", "k").result(timeout=10)[0] == "d"


class TestDispatcherRequestError:
    def _request(self, scheduler: str) -> AllocationRequest:
        return request_from_payload({
            "applications": [{"work": 10.0}],
            "platform": "taihulight",
            "scheduler": scheduler,
        })

    def test_model_failure_wrapped_with_fingerprint(self):
        with Dispatcher(workers=2) as dispatcher:
            good = self._request("dominant-minratio")
            requests = [good]
            out = dispatcher.evaluate(requests, keys=["fp-good"])
            assert not isinstance(out[0], Exception)

            # an unknown scheduler fails inside evaluation with a
            # ReproError; with keys supplied it must come back tagged
            bad = dataclasses.replace(good, scheduler="no-such-strategy")
            out = dispatcher.evaluate([good, bad], keys=["fp-a", "fp-b"])
            assert not isinstance(out[0], Exception)
            assert isinstance(out[1], RequestError)
            assert out[1].request_id == "fp-b"
            assert out[1].scheduler == "no-such-strategy"
            assert isinstance(out[1].__cause__, ReproError)
            payload = out[1].to_payload()
            assert payload["request_id"] == "fp-b"
            assert payload["scheduler"] == "no-such-strategy"

    def test_without_keys_errors_stay_bare(self):
        with Dispatcher(workers=2) as dispatcher:
            good = self._request("dominant-minratio")
            bad = dataclasses.replace(good, scheduler="no-such-strategy")
            out = dispatcher.evaluate([good, bad])
            assert isinstance(out[1], ReproError)
            assert not isinstance(out[1], RequestError)

    def test_inflight_gauge_settles(self):
        with Dispatcher(workers=2) as dispatcher:
            dispatcher.evaluate([self._request("dominant-minratio")],
                                keys=["fp"])
            assert dispatcher.inflight.value == 0
