"""Tests for the coalescing request batcher (deterministic, no HTTP)."""

from __future__ import annotations

import threading

import pytest

from repro.service.batcher import RequestBatcher
from repro.types import ModelError


def _submit_n(batcher, n, *, key=None):
    """Submit n dummy requests (distinct keys unless *key* is given)."""
    return [
        batcher.submit(f"req{i}", key if key is not None else f"key{i}")
        for i in range(n)
    ]


class TestBatching:
    def test_full_batch_dispatches_in_one_call(self):
        calls: list[list] = []

        def evaluate(reqs):
            calls.append(list(reqs))
            return [f"dec:{r}" for r in reqs]

        # A long linger forces the batch to dispatch on *fullness*,
        # making the test timing-independent.
        with RequestBatcher(evaluate, max_batch_size=3, max_wait_s=30.0) as b:
            futures = _submit_n(b, 3)
            results = [f.result(timeout=10) for f in futures]
        assert len(calls) == 1 and len(calls[0]) == 3
        for i, (decision, batch_size, coalesced) in enumerate(results):
            assert decision == f"dec:req{i}"
            assert batch_size == 3
            assert coalesced is False

    def test_single_request_dispatches_after_linger(self):
        with RequestBatcher(lambda reqs: ["d"] * len(reqs),
                            max_batch_size=8, max_wait_s=0.01) as b:
            decision, batch_size, coalesced = b.submit("r", "k").result(timeout=10)
        assert decision == "d" and batch_size == 1 and not coalesced

    def test_zero_wait_still_serves(self):
        with RequestBatcher(lambda reqs: ["d"] * len(reqs),
                            max_batch_size=8, max_wait_s=0.0) as b:
            assert b.submit("r", "k").result(timeout=10)[0] == "d"

    def test_stats(self):
        with RequestBatcher(lambda reqs: ["d"] * len(reqs),
                            max_batch_size=2, max_wait_s=30.0) as b:
            futures = _submit_n(b, 2)
            for f in futures:
                f.result(timeout=10)
            stats = b.stats()
        assert stats.batches == 1
        assert stats.requests == 2
        assert stats.max_batch_seen == 2
        assert stats.mean_batch_size == pytest.approx(2.0)


class TestCoalescing:
    def test_identical_keys_computed_once(self):
        calls: list[list] = []

        def evaluate(reqs):
            calls.append(list(reqs))
            return [f"dec:{r}" for r in reqs]

        with RequestBatcher(evaluate, max_batch_size=3, max_wait_s=30.0) as b:
            futures = _submit_n(b, 3, key="same")
            results = [f.result(timeout=10) for f in futures]
        # one evaluate call, one unique request inside it
        assert len(calls) == 1 and calls[0] == ["req0"]
        decisions = [r[0] for r in results]
        assert decisions == ["dec:req0"] * 3
        # exactly the first occurrence is "not coalesced"
        assert [r[2] for r in results] == [False, True, True]
        assert b.stats().coalesced == 2


class TestFailure:
    def test_per_request_exception_lands_on_its_future(self):
        def evaluate(reqs):
            return [
                ModelError("boom") if r == "req1" else f"dec:{r}"
                for r in reqs
            ]

        with RequestBatcher(evaluate, max_batch_size=3, max_wait_s=30.0) as b:
            futures = _submit_n(b, 3)
            assert futures[0].result(timeout=10)[0] == "dec:req0"
            with pytest.raises(ModelError, match="boom"):
                futures[1].result(timeout=10)
            assert futures[2].result(timeout=10)[0] == "dec:req2"

    def test_evaluator_crash_fails_whole_batch(self):
        def evaluate(reqs):
            raise RuntimeError("pool on fire")

        with RequestBatcher(evaluate, max_batch_size=2, max_wait_s=30.0) as b:
            futures = _submit_n(b, 2)
            for f in futures:
                with pytest.raises(RuntimeError, match="pool on fire"):
                    f.result(timeout=10)

    def test_wrong_result_count_detected(self):
        with RequestBatcher(lambda reqs: ["only-one"],
                            max_batch_size=2, max_wait_s=30.0) as b:
            futures = _submit_n(b, 2)
            for f in futures:
                with pytest.raises(ModelError, match="results"):
                    f.result(timeout=10)


class TestLifecycle:
    def test_submit_after_close_rejected(self):
        b = RequestBatcher(lambda reqs: ["d"] * len(reqs))
        b.close()
        with pytest.raises(ModelError, match="closed"):
            b.submit("r", "k")

    def test_close_is_idempotent(self):
        b = RequestBatcher(lambda reqs: ["d"] * len(reqs))
        b.close()
        b.close()

    def test_knob_validation(self):
        with pytest.raises(ModelError):
            RequestBatcher(lambda reqs: [], max_batch_size=0)
        with pytest.raises(ModelError):
            RequestBatcher(lambda reqs: [], max_wait_s=-1.0)

    def test_concurrent_submitters(self):
        """Many threads, one batcher: every caller gets its own answer."""
        with RequestBatcher(lambda reqs: [f"dec:{r}" for r in reqs],
                            max_batch_size=4, max_wait_s=0.005) as b:
            results: dict[int, str] = {}
            lock = threading.Lock()

            def caller(i: int):
                decision, _, _ = b.submit(f"req{i}", f"key{i}").result(timeout=10)
                with lock:
                    results[i] = decision

            threads = [threading.Thread(target=caller, args=(i,))
                       for i in range(16)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert results == {i: f"dec:req{i}" for i in range(16)}
