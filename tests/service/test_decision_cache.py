"""Tests for the in-memory LRU decision cache."""

from __future__ import annotations

import threading

import pytest

from repro.service.cache import DecisionCache
from repro.types import ModelError


class TestLRU:
    def test_get_put_roundtrip(self):
        cache = DecisionCache(capacity=4)
        assert cache.get("k") is None
        cache.put("k", 42)
        assert cache.get("k") == 42

    def test_capacity_eviction_is_lru(self):
        cache = DecisionCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")        # refresh 'a' -> 'b' is now least recent
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_put_refreshes_recency(self):
        cache = DecisionCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)    # re-insert refreshes
        cache.put("c", 3)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.get("a") == 10

    def test_len_and_clear(self):
        cache = DecisionCache(capacity=8)
        for i in range(5):
            cache.put(str(i), i)
        assert len(cache) == 5
        cache.clear()
        assert len(cache) == 0
        # lifetime counters survive the clear
        assert cache.stats().misses == 0 and cache.stats().evictions == 0

    def test_peek_does_not_touch(self):
        cache = DecisionCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.peek("a") == 1     # no recency refresh, no counter
        cache.put("c", 3)
        assert "a" not in cache         # 'a' was still the LRU entry
        stats = cache.stats()
        assert stats.hits == 0 and stats.misses == 0

    def test_capacity_validation(self):
        with pytest.raises(ModelError):
            DecisionCache(capacity=0)


class TestCounters:
    def test_hits_misses_evictions(self):
        cache = DecisionCache(capacity=2)
        cache.get("x")                  # miss
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)               # evicts 'a'
        cache.get("b")                  # hit
        stats = cache.stats()
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.evictions == 1
        assert stats.size == 2
        assert stats.capacity == 2
        assert stats.hit_rate == pytest.approx(0.5)

    def test_hit_rate_zero_without_traffic(self):
        assert DecisionCache(4).stats().hit_rate == 0.0

    def test_as_dict_keys(self):
        d = DecisionCache(4).stats().as_dict()
        assert set(d) == {"hits", "misses", "evictions", "size", "capacity",
                          "hit_rate"}


class TestThreadSafety:
    def test_concurrent_put_get(self):
        cache = DecisionCache(capacity=64)
        errors: list[Exception] = []

        def worker(base: int):
            try:
                for i in range(500):
                    key = str((base * 31 + i) % 100)
                    cache.put(key, i)
                    cache.get(key)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = cache.stats()
        assert stats.size <= 64
        assert stats.lookups == 8 * 500
