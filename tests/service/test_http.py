"""End-to-end tests of the HTTP front end and the thin client."""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest

from repro.machine import taihulight
from repro.service import DecisionService, ServiceClient, ServiceError, make_server
from repro.service.server import render_metrics_text
from repro.types import ReproError
from repro.workloads import npb6


@pytest.fixture(scope="module")
def server():
    service = DecisionService(cache_capacity=64, max_batch_size=4,
                              max_wait_ms=1.0, workers=2)
    httpd = make_server("127.0.0.1", 0, service)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield httpd
    httpd.shutdown()
    httpd.server_close()
    service.close()
    thread.join(timeout=5)


@pytest.fixture(scope="module")
def client(server):
    host, port = server.server_address[:2]
    return ServiceClient(f"http://{host}:{port}")


class TestAllocateEndpoint:
    def test_allocate_and_warm_repeat(self, client):
        wl = npb6(seq_range=None)
        first = client.allocate(wl, "taihulight", scheduler="dominant-minratio")
        again = client.allocate(wl, "taihulight", scheduler="dominant-minratio")
        decision = first["decision"]
        assert decision["scheduler"] == "dominant-minratio"
        assert len(decision["procs"]) == wl.n
        assert sum(decision["procs"]) <= taihulight().p * (1 + 1e-9)
        assert sum(decision["cache"]) <= 1 + 1e-9
        assert decision["makespan"] == pytest.approx(max(decision["times"]))
        # warm repeat: same id, served from the decision cache
        assert again["request_id"] == first["request_id"]
        assert again["cache_hit"] is True
        assert again["decision"] == decision

    def test_allocate_with_custom_platform_mapping(self, client):
        reply = client.allocate(
            [{"work": 1e9, "access_freq": 0.5, "miss_rate": 0.01}],
            {"p": 8.0, "cache_size": 2e7},
        )
        assert reply["decision"]["procs"] == [8.0]

    def test_bad_payload_is_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.allocate([{"work": 1e9}], "nonexistent-platform")
        assert err.value.status == 400
        assert "unknown platform preset" in str(err.value)

    def test_unknown_scheduler_is_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.allocate([{"work": 1e9}], "taihulight", scheduler="magic")
        assert err.value.status == 400

    def test_invalid_json_is_400(self, server):
        host, port = server.server_address[:2]
        req = urllib.request.Request(
            f"http://{host}:{port}/v1/allocate", data=b"not json{",
            headers={"Content-Type": "application/json"}, method="POST")
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req)
        assert err.value.code == 400

    def test_empty_body_is_400(self, server):
        host, port = server.server_address[:2]
        req = urllib.request.Request(
            f"http://{host}:{port}/v1/allocate", data=b"", method="POST")
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req)
        assert err.value.code == 400


class TestOtherEndpoints:
    def test_schedulers_listing(self, client):
        listing = client.schedulers()
        names = [e["name"] for e in listing]
        assert names == sorted(names)
        assert "dominant-minratio" in names
        by_name = {e["name"]: e for e in listing}
        assert by_name["randompart"]["randomized"] is True
        assert by_name["fair"]["provenance"]

    def test_metrics_json(self, client):
        wl = npb6(seq_range=None)
        client.allocate(wl, "taihulight")
        metrics = client.metrics()
        assert metrics["decisions.total"] >= 1
        assert metrics["decision_cache.capacity"] == 64
        assert "batcher.batches" in metrics

    def test_metrics_prometheus_text(self, server):
        host, port = server.server_address[:2]
        with urllib.request.urlopen(f"http://{host}:{port}/metrics") as resp:
            assert resp.headers["Content-Type"].startswith("text/plain")
            text = resp.read().decode()
        assert "# TYPE repro_decisions_total gauge" in text
        assert "repro_decision_cache_hits" in text
        # every value line parses as a float
        for line in text.strip().splitlines():
            if not line.startswith("#"):
                name, value = line.split()
                float(value)

    def test_healthz(self, client):
        assert client.healthy() is True

    def test_unknown_path_is_404(self, client):
        with pytest.raises(ServiceError) as err:
            client._call("/v2/allocate")
        assert err.value.status == 404

    def test_unreachable_server_raises_repro_error(self):
        dead = ServiceClient("http://127.0.0.1:1", timeout=0.5)
        with pytest.raises(ReproError, match="cannot reach"):
            dead.metrics()
        assert dead.healthy() is False


class TestMetricsRendering:
    def test_render_names_and_values(self):
        text = render_metrics_text({"decision_cache.hit_rate": 0.5,
                                    "decisions.total": 3})
        lines = text.strip().splitlines()
        assert "repro_decision_cache_hit_rate 0.5" in lines
        assert "repro_decisions_total 3" in lines

    def test_output_is_sorted_and_terminated(self):
        text = render_metrics_text({"b.x": 1, "a.y": 2})
        assert text.index("repro_a_y") < text.index("repro_b_x")
        assert text.endswith("\n")


class TestRequestObjectThroughClient:
    def test_allocation_request_passthrough(self, client):
        from repro.service import AllocationRequest

        req = AllocationRequest(applications=tuple(npb6(seq_range=None)),
                                platform=taihulight(), scheduler="fair")
        reply = client.allocate(req)
        assert reply["request_id"] == req.fingerprint()
        assert json.dumps(reply)  # fully JSON-serializable
