"""Tests for the serving observability primitives."""

from __future__ import annotations

import threading

import pytest

from repro.service.metrics import LATENCY_BUCKETS, Gauge, LatencyHistogram


class TestGauge:
    def test_inc_dec(self):
        gauge = Gauge()
        gauge.inc()
        gauge.inc(3)
        gauge.dec()
        assert gauge.value == 3

    def test_track_decrements_on_exception(self):
        gauge = Gauge()
        with pytest.raises(RuntimeError):
            with gauge.track():
                assert gauge.value == 1
                raise RuntimeError("boom")
        assert gauge.value == 0

    def test_thread_safety(self):
        gauge = Gauge()
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            for _ in range(10_000):
                gauge.inc()
                gauge.dec()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert gauge.value == 0


class TestLatencyHistogram:
    def test_default_buckets_are_log_spaced(self):
        assert LATENCY_BUCKETS[0] == pytest.approx(1e-4)
        ratios = [b / a for a, b in zip(LATENCY_BUCKETS, LATENCY_BUCKETS[1:])]
        assert all(r == pytest.approx(2.0) for r in ratios)

    def test_empty_histogram(self):
        hist = LatencyHistogram()
        assert hist.count == 0
        assert hist.quantile(0.99) == 0.0
        d = hist.as_dict()
        assert d["count"] == 0 and d["p99_ms"] == 0.0

    def test_observe_and_count(self):
        hist = LatencyHistogram()
        for value in (0.0002, 0.0002, 0.01, 1.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum_seconds == pytest.approx(1.0104)

    def test_quantiles_bracket_observations(self):
        hist = LatencyHistogram()
        for _ in range(99):
            hist.observe(0.001)
        hist.observe(0.1)
        # p50 lands in the bucket containing 1 ms; p99+ approaches the
        # bucket containing 100 ms
        assert 0.0004 <= hist.quantile(0.50) <= 0.0016
        assert hist.quantile(0.995) >= 0.05

    def test_above_last_bound_goes_to_inf_bucket(self):
        hist = LatencyHistogram()
        hist.observe(100.0)  # beyond ~6.6 s
        counts, total, _ = hist.snapshot()
        assert counts[-1] == 1 and total == 1
        # the open bucket reports the last finite bound
        assert hist.quantile(0.99) == pytest.approx(LATENCY_BUCKETS[-1])

    def test_quantile_validation(self):
        hist = LatencyHistogram()
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_bucket_validation(self):
        with pytest.raises(ValueError):
            LatencyHistogram(buckets=(0.2, 0.1))
        with pytest.raises(ValueError):
            LatencyHistogram(buckets=())

    def test_prometheus_exposition(self):
        hist = LatencyHistogram(buckets=(0.001, 0.01, 0.1))
        hist.observe(0.0005)
        hist.observe(0.05)
        hist.observe(5.0)
        lines = list(hist.prometheus_lines("repro_latency_seconds"))
        assert lines[0] == "# TYPE repro_latency_seconds histogram"
        # cumulative bucket counts, then +Inf == _count
        assert 'repro_latency_seconds_bucket{le="0.001"} 1' in lines
        assert 'repro_latency_seconds_bucket{le="0.1"} 2' in lines
        assert 'repro_latency_seconds_bucket{le="+Inf"} 3' in lines
        assert lines[-1] == "repro_latency_seconds_count 3"
        assert any(line.startswith("repro_latency_seconds_sum ")
                   for line in lines)

    def test_cumulative_counts_are_monotone(self):
        hist = LatencyHistogram()
        for k in range(40):
            hist.observe(1e-4 * 1.7 ** (k % 17))
        values = []
        for line in hist.prometheus_lines("h"):
            if line.startswith('h_bucket{le="') and "+Inf" not in line:
                values.append(int(line.rsplit(" ", 1)[1]))
        assert values == sorted(values)
