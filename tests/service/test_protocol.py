"""Tests for the service wire protocol: canonicalization, fingerprints."""

from __future__ import annotations

import json
import math

import pytest

from repro.core import Application, Platform
from repro.machine import taihulight
from repro.service.protocol import (
    AllocationRequest,
    canonical_json,
    parse_platform,
    request_from_payload,
)
from repro.types import ModelError


def _apps(n: int = 2) -> tuple[Application, ...]:
    return tuple(
        Application(name=f"a{i}", work=1e9 * (i + 1), access_freq=0.5,
                    miss_rate=0.01)
        for i in range(n)
    )


def _request(**kw) -> AllocationRequest:
    kw.setdefault("applications", _apps())
    kw.setdefault("platform", taihulight())
    return AllocationRequest(**kw)


class TestCanonicalJson:
    def test_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [1.5, 2]}) == '{"a":[1.5,2],"b":1}'

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})


class TestFingerprint:
    def test_deterministic(self):
        assert _request().fingerprint() == _request().fingerprint()

    def test_differs_on_workload(self):
        assert _request().fingerprint() != _request(applications=_apps(3)).fingerprint()

    def test_differs_on_scheduler(self):
        a = _request(scheduler="dominant-minratio")
        b = _request(scheduler="dominant-maxratio")
        assert a.fingerprint() != b.fingerprint()

    def test_preset_and_explicit_platform_collide(self):
        """The same machine, phrased two ways, is the same cache line."""
        preset = _request(platform=parse_platform("taihulight"))
        explicit = _request(platform=Platform(
            p=256.0, cache_size=32000e6, latency_cache=0.17,
            latency_memory=1.0, alpha=0.5, name="whatever"))
        assert preset.fingerprint() == explicit.fingerprint()

    def test_platform_label_is_ignored(self):
        a = _request(platform=taihulight())
        b = _request(platform=Platform(
            p=256.0, cache_size=32000e6, alpha=0.5, name="renamed"))
        assert a.fingerprint() == b.fingerprint()

    def test_int_and_float_spellings_collide(self):
        """JSON distinguishes 256 from 256.0; the fingerprint must not."""
        int_spelled = request_from_payload({
            "applications": [{"work": 1000000000, "access_freq": 1,
                              "miss_rate": 0}],
            "platform": {"p": 256, "cache_size": 32000000000, "alpha": 0.5},
        })
        float_spelled = request_from_payload({
            "applications": [{"work": 1e9, "access_freq": 1.0,
                              "miss_rate": 0.0}],
            "platform": {"p": 256.0, "cache_size": 32000e6, "alpha": 0.5},
        })
        assert int_spelled.fingerprint() == float_spelled.fingerprint()

    def test_int_platform_matches_preset(self):
        explicit = _request(platform=Platform(p=256, cache_size=32000000000,
                                              alpha=0.5))
        assert explicit.fingerprint() == _request().fingerprint()

    def test_seed_ignored_for_deterministic_scheduler(self):
        assert (_request(seed=None).fingerprint()
                == _request(seed=7).fingerprint())

    def test_seed_matters_for_randomized_scheduler(self):
        a = _request(scheduler="randompart", seed=1)
        b = _request(scheduler="randompart", seed=2)
        assert a.fingerprint() != b.fingerprint()

    def test_unseeded_randomized_defaults_to_zero(self):
        assert (_request(scheduler="randompart", seed=None).fingerprint()
                == _request(scheduler="randompart", seed=0).fingerprint())

    def test_infinite_footprint_is_encodable(self):
        req = _request()
        assert math.isinf(req.applications[0].footprint)
        payload = req.canonical_payload()
        assert payload["applications"][0]["footprint"] is None
        json.dumps(payload, allow_nan=False)  # stays standard JSON


class TestRequestFromPayload:
    def _payload(self, **overrides):
        payload = {
            "applications": [
                {"name": "a0", "work": 1e9, "access_freq": 0.5, "miss_rate": 0.01},
                {"work": 2e9},
            ],
            "platform": "taihulight",
            "scheduler": "dominant-minratio",
        }
        payload.update(overrides)
        return payload

    def test_roundtrip(self):
        req = request_from_payload(self._payload())
        assert req.scheduler == "dominant-minratio"
        assert req.platform == taihulight()
        assert req.applications[0].name == "a0"
        # unnamed applications get positional names
        assert req.applications[1].name == "app1"
        # wire -> request -> wire is stable
        again = request_from_payload(req.canonical_payload())
        assert again.fingerprint() == req.fingerprint()

    def test_platform_preset_with_overrides(self):
        req = request_from_payload(
            self._payload(platform={"preset": "taihulight", "p": 64.0}))
        assert req.platform.p == 64.0

    def test_platform_explicit(self):
        req = request_from_payload(
            self._payload(platform={"p": 8.0, "cache_size": 2e7}))
        assert req.platform.cache_size == 2e7

    def test_null_footprint_means_infinite(self):
        payload = self._payload()
        payload["applications"][0]["footprint"] = None
        req = request_from_payload(payload)
        assert math.isinf(req.applications[0].footprint)

    @pytest.mark.parametrize("mutation, match", [
        ({"applications": []}, "non-empty"),
        ({"applications": "nope"}, "non-empty"),
        ({"platform": {"preset": "warehouse"}}, "unknown platform preset"),
        ({"platform": {"p": 8.0}}, "cache_size"),
        ({"platform": {"p": 8.0, "cache_size": 1e6, "cores": 4}},
         "unknown platform fields"),
        ({"scheduler": 7}, "registry name"),
        ({"seed": "tuesday"}, "integer"),
        ({"surprise": 1}, "unknown request fields"),
    ])
    def test_malformed_payloads(self, mutation, match):
        with pytest.raises(ModelError, match=match):
            request_from_payload(self._payload(**mutation))

    def test_malformed_application(self):
        with pytest.raises(ModelError, match="application #1"):
            request_from_payload(self._payload(
                applications=[{"work": 1e9}, {"work": 1e9, "color": "red"}]))
        with pytest.raises(ModelError, match="missing required field 'work'"):
            request_from_payload(self._payload(applications=[{"name": "x"}]))

    def test_model_validation_propagates(self):
        with pytest.raises(ModelError, match="seq_fraction"):
            request_from_payload(self._payload(
                applications=[{"work": 1e9, "seq_fraction": 3.0}]))

    def test_empty_request_rejected(self):
        with pytest.raises(ModelError):
            AllocationRequest(applications=(), platform=taihulight())
