"""Tests for the transport-agnostic decision service core."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import get_scheduler
from repro.machine import taihulight
from repro.service import AllocationRequest, DecisionService, compute_decision
from repro.service import dispatcher as dispatcher_mod
from repro.types import ModelError
from repro.workloads import npb6, npb_synth


@pytest.fixture
def request6():
    return AllocationRequest(
        applications=tuple(npb6(seq_range=None)),
        platform=taihulight(),
        scheduler="dominant-minratio",
    )


@pytest.fixture
def service():
    with DecisionService(cache_capacity=32, max_batch_size=4,
                         max_wait_ms=1.0, workers=2) as svc:
        yield svc


class TestComputeDecision:
    def test_matches_offline_scheduler(self, request6):
        decision = compute_decision(request6)
        schedule = get_scheduler("dominant-minratio")(
            request6.workload(), request6.platform, None)
        assert decision.makespan == pytest.approx(schedule.makespan(), rel=1e-12)
        assert np.allclose(decision.procs, schedule.procs)
        assert np.allclose(decision.cache, schedule.cache)
        assert decision.names == request6.workload().names

    def test_randomized_is_seed_reproducible(self, request6):
        a = compute_decision(AllocationRequest(
            applications=request6.applications, platform=request6.platform,
            scheduler="randompart", seed=5))
        b = compute_decision(AllocationRequest(
            applications=request6.applications, platform=request6.platform,
            scheduler="randompart", seed=5))
        c = compute_decision(AllocationRequest(
            applications=request6.applications, platform=request6.platform,
            scheduler="randompart", seed=6))
        assert a == b
        assert a != c

    def test_sequential_strategy_served_too(self, request6):
        decision = compute_decision(AllocationRequest(
            applications=request6.applications, platform=request6.platform,
            scheduler="allproccache"))
        assert decision.makespan == pytest.approx(sum(decision.times))

    def test_unknown_scheduler(self, request6):
        with pytest.raises(ModelError, match="unknown scheduler"):
            compute_decision(AllocationRequest(
                applications=request6.applications,
                platform=request6.platform, scheduler="magic"))


class TestServing:
    def test_cold_then_warm(self, service, request6, monkeypatch):
        computes = []
        real = compute_decision
        monkeypatch.setattr(dispatcher_mod, "compute_decision",
                            lambda req: (computes.append(1), real(req))[1])
        cold = service.allocate(request6)
        warm = service.allocate(request6)
        # the acceptance property: a warm repeat is a decision-cache hit,
        # the hit counter moves, and the scheduler is NOT recomputed
        assert not cold.cache_hit and warm.cache_hit
        assert len(computes) == 1
        assert warm.decision == cold.decision
        assert warm.batch_size == 0
        assert cold.request_id == warm.request_id == request6.fingerprint()
        metrics = service.metrics()
        assert metrics["decision_cache.hits"] == 1
        assert metrics["decision_cache.misses"] == 1
        assert metrics["decisions.total"] == 2

    def test_distinct_requests_distinct_decisions(self, service):
        rng = np.random.default_rng(0)
        reqs = [
            AllocationRequest(applications=tuple(npb_synth(4, rng)),
                              platform=taihulight())
            for _ in range(3)
        ]
        responses = [service.allocate(r) for r in reqs]
        ids = {r.request_id for r in responses}
        assert len(ids) == 3
        assert all(not r.cache_hit for r in responses)

    def test_concurrent_identical_requests_coalesce(self, request6):
        # A generous linger window so both threads land in one batch.
        with DecisionService(max_batch_size=2, max_wait_ms=1000.0,
                             workers=2) as svc:
            barrier = threading.Barrier(2)
            responses = []
            lock = threading.Lock()

            def caller():
                barrier.wait()
                resp = svc.allocate(request6)
                with lock:
                    responses.append(resp)

            threads = [threading.Thread(target=caller) for _ in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert [r.decision for r in responses] == [responses[0].decision] * 2
            # one computed it, the other coalesced onto it (neither was
            # a decision-cache hit: both arrived before the store)
            assert sorted(r.coalesced for r in responses) == [False, True]
            assert svc.metrics()["batcher.coalesced"] == 1

    def test_concurrent_distinct_requests_batch(self):
        rng = np.random.default_rng(1)
        reqs = [
            AllocationRequest(applications=tuple(npb_synth(4, rng)),
                              platform=taihulight())
            for _ in range(3)
        ]
        with DecisionService(max_batch_size=3, max_wait_ms=1000.0,
                             workers=2) as svc:
            barrier = threading.Barrier(3)
            sizes = []
            lock = threading.Lock()

            def caller(req):
                barrier.wait()
                resp = svc.allocate(req)
                with lock:
                    sizes.append(resp.batch_size)

            threads = [threading.Thread(target=caller, args=(r,)) for r in reqs]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert sizes == [3, 3, 3]
            assert svc.metrics()["batcher.max_batch_seen"] == 3

    def test_error_does_not_poison_service(self, service, request6):
        bad = AllocationRequest(applications=request6.applications,
                                platform=request6.platform, scheduler="magic")
        with pytest.raises(ModelError):
            service.allocate(bad)
        ok = service.allocate(request6)
        assert ok.decision.makespan > 0
        assert service.metrics()["decisions.errors"] == 1

    def test_lru_eviction_bounds_memory(self, request6):
        rng = np.random.default_rng(2)
        with DecisionService(cache_capacity=2, max_wait_ms=0.0) as svc:
            for _ in range(5):
                svc.allocate(AllocationRequest(
                    applications=tuple(npb_synth(3, rng)),
                    platform=taihulight()))
            metrics = svc.metrics()
            assert metrics["decision_cache.size"] <= 2
            assert metrics["decision_cache.evictions"] == 3

    def test_latency_metadata(self, service, request6):
        resp = service.allocate(request6)
        assert resp.latency_ms > 0
        assert service.metrics()["decisions.latency_seconds_total"] > 0

    def test_allocate_payload(self, service):
        resp = service.allocate_payload({
            "applications": [{"work": 1e9, "access_freq": 0.5,
                              "miss_rate": 0.01}],
            "platform": "taihulight",
        })
        assert resp.decision.procs == (256.0,)

    def test_knob_validation(self):
        with pytest.raises(ModelError):
            DecisionService(max_wait_ms=-1.0)
