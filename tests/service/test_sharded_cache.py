"""Tests for the fingerprint-sharded decision cache."""

from __future__ import annotations

import hashlib
import threading

import pytest

from repro.service.cache import (
    CacheStats,
    DecisionCache,
    ShardedCacheStats,
    ShardedDecisionCache,
)
from repro.types import ModelError


def fingerprints(n: int) -> list[str]:
    return [hashlib.sha256(str(i).encode()).hexdigest() for i in range(n)]


class TestSemantics:
    def test_get_put_roundtrip(self):
        cache = ShardedDecisionCache(capacity=256, shards=8)
        keys = fingerprints(10)
        for i, key in enumerate(keys):
            cache.put(key, i)
        assert [cache.get(k) for k in keys] == list(range(10))
        assert len(cache) == 10
        assert all(k in cache for k in keys)
        assert "missing" not in cache

    def test_miss_returns_none_and_counts(self):
        cache = ShardedDecisionCache(capacity=256, shards=8)
        assert cache.get("nope") is None
        stats = cache.stats()
        assert stats.hits == 0 and stats.misses == 1
        assert stats.hit_rate == 0.0

    def test_peek_does_not_count(self):
        cache = ShardedDecisionCache(capacity=256, shards=8)
        cache.put("k", 1)
        assert cache.peek("k") == 1
        assert cache.peek("absent") is None
        stats = cache.stats()
        assert stats.hits == 0 and stats.misses == 0

    def test_put_refresh_overwrites(self):
        cache = ShardedDecisionCache(capacity=256, shards=8)
        cache.put("k", 1)
        cache.put("k", 2)
        assert cache.get("k") == 2
        assert len(cache) == 1

    def test_get_many_values_and_counters(self):
        cache = ShardedDecisionCache(capacity=256, shards=8)
        keys = fingerprints(8)
        for i, key in enumerate(keys[:5]):
            cache.put(key, i)
        out = cache.get_many(keys)
        assert out == [0, 1, 2, 3, 4, None, None, None]
        stats = cache.stats()
        assert stats.hits == 5 and stats.misses == 3

    def test_clear_keeps_counters(self):
        cache = ShardedDecisionCache(capacity=256, shards=8)
        cache.put("k", 1)
        cache.get("k")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().hits == 1

    def test_count_hit_feeds_aggregate(self):
        cache = ShardedDecisionCache(capacity=256, shards=8)
        cache.count_hit()
        cache.count_hit()
        assert cache.stats().hits == 2

    def test_stats_shape_matches_single_lock_plus_shards(self):
        sharded = ShardedDecisionCache(capacity=256, shards=8).stats()
        single = DecisionCache(capacity=256).stats()
        assert isinstance(sharded, ShardedCacheStats)
        assert isinstance(sharded, CacheStats)
        assert set(sharded.as_dict()) == set(single.as_dict()) | {"shards"}

    def test_validation(self):
        with pytest.raises(ModelError):
            ShardedDecisionCache(capacity=0)
        with pytest.raises(ModelError):
            ShardedDecisionCache(capacity=16, shards=0)


class TestShardGeometry:
    def test_shard_count_rounds_to_power_of_two(self):
        assert ShardedDecisionCache(capacity=1024, shards=5).shards == 8
        assert ShardedDecisionCache(capacity=1024, shards=8).shards == 8

    def test_tiny_cache_degrades_to_one_shard(self):
        # Exact eviction counts must stay deterministic for tiny
        # caches, so sharding backs off below a useful shard size.
        assert ShardedDecisionCache(capacity=2, shards=8).shards == 1
        assert ShardedDecisionCache(capacity=16, shards=8).shards == 1

    def test_per_shard_capacities_sum_to_total(self):
        cache = ShardedDecisionCache(capacity=1001, shards=8)
        assert sum(cache._caps) == 1001


class TestEviction:
    def test_capacity_is_respected(self):
        cache = ShardedDecisionCache(capacity=128, shards=8)
        keys = fingerprints(500)
        for i, key in enumerate(keys):
            cache.put(key, i)
        stats = cache.stats()
        assert stats.size <= 128
        # every insert beyond a shard's capacity evicted something
        assert stats.evictions == 500 - stats.size

    def test_single_shard_evicts_fifo_like_lru(self):
        cache = ShardedDecisionCache(capacity=2, shards=1)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.get("a") is None  # oldest unreferenced entry went
        assert cache.get("b") == 2 and cache.get("c") == 3
        assert cache.stats().evictions == 1

    def test_second_chance_spares_referenced_entries(self):
        cache = ShardedDecisionCache(capacity=2, shards=1)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # reference "a": it survives the next eviction
        cache.put("c", 3)
        assert cache.peek("a") == 1
        assert cache.peek("b") is None

    def test_eviction_terminates_when_everything_is_hot(self):
        cache = ShardedDecisionCache(capacity=4, shards=1)
        for key in "abcd":
            cache.put(key, key)
        for key in "abcd":
            cache.get(key)  # all referenced
        cache.put("e", "e")  # must still evict, not loop
        assert len(cache) == 4


class TestConcurrency:
    def test_counters_exact_under_thread_hammer(self):
        """N threads x K shards: hits + misses == exact lookup count."""
        nthreads, per_thread = 8, 5_000
        keys = fingerprints(256)
        cache = ShardedDecisionCache(capacity=512, shards=8)
        for i, key in enumerate(keys):
            cache.put(key, i)
        barrier = threading.Barrier(nthreads)
        errors = []

        def worker(tid: int):
            local = keys[tid:] + keys[:tid]
            try:
                barrier.wait()
                for i in range(per_thread):
                    key = local[i % len(local)]
                    value = cache.get(key)
                    if value is not None and keys[value] != key:
                        errors.append((key, value))
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(nthreads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = cache.stats()
        # no lost counter updates: every lookup is a hit or a miss
        assert stats.hits + stats.misses == nthreads * per_thread
        assert stats.size <= 512

    def test_get_many_counters_exact_under_threads(self):
        nthreads, bursts_per_thread, burst = 8, 200, 64
        keys = fingerprints(256)
        cache = ShardedDecisionCache(capacity=512, shards=8)
        for i, key in enumerate(keys[:128]):
            cache.put(key, i)
        chunks = [keys[i:i + burst] for i in range(0, len(keys), burst)]
        barrier = threading.Barrier(nthreads)

        def worker(tid: int):
            barrier.wait()
            for i in range(bursts_per_thread):
                cache.get_many(chunks[(tid + i) % len(chunks)])

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(nthreads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = cache.stats()
        assert stats.hits + stats.misses == nthreads * bursts_per_thread * burst
        # half the keyspace was present throughout: exactly half hit
        assert stats.hits == stats.misses

    def test_concurrent_put_get_no_lost_entries(self):
        nthreads = 8
        keys = fingerprints(512)
        cache = ShardedDecisionCache(capacity=1024, shards=8)
        barrier = threading.Barrier(nthreads)

        def worker(tid: int):
            barrier.wait()
            for rounds in range(3):
                for i, key in enumerate(keys):
                    if i % nthreads == tid:
                        cache.put(key, i)
                    else:
                        cache.get(key)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(nthreads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # capacity was never exceeded, so every key must be present
        assert all(cache.peek(k) is not None for k in keys)
        assert cache.stats().evictions == 0
