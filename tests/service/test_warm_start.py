"""Cross-restart warm starts: the disk tier under the decision service."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.service import DecisionService
from repro.service.protocol import request_from_payload

_KEYS_FILE = Path(__file__).with_name("metrics_keys.txt")


def _payload(seed: int = 7) -> dict:
    return {
        "applications": [
            {"name": "a0", "work": 1e9, "access_freq": 0.5, "miss_rate": 0.01},
            {"name": "a1", "work": 2e9},
        ],
        "platform": "taihulight",
        "scheduler": "dominant-minratio",
        "seed": seed,
    }


@pytest.fixture
def service_factory():
    services = []

    def build(**kw):
        service = DecisionService(**kw)
        services.append(service)
        return service

    yield build
    for service in services:
        service.batcher.close()
        service.dispatcher.close()


class TestWarmStart:
    def test_fresh_service_hits_from_disk(self, tmp_path, service_factory):
        first = service_factory(cache_dir=tmp_path)
        r1 = first.allocate(request_from_payload(_payload()))
        assert not r1.cache_hit

        # A brand-new service over the same directory — the restart.
        # Its very first repeated request is already a cache hit.
        fresh = service_factory(cache_dir=tmp_path)
        r2 = fresh.allocate(request_from_payload(_payload()))
        assert r2.cache_hit
        assert r2.decision == r1.decision
        st = fresh.cache.stats()
        assert (st.hits, st.misses, st.disk_hits) == (1, 0, 1)

    def test_env_var_configures_the_tier(self, tmp_path, monkeypatch,
                                         service_factory):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        warm = service_factory()
        warm.allocate(request_from_payload(_payload()))
        assert len(warm.cache.disk.entries()) == 1

        fresh = service_factory()
        assert fresh.allocate(request_from_payload(_payload())).cache_hit

    def test_memory_only_without_configuration(self, monkeypatch,
                                               service_factory):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        service = service_factory()
        assert service.cache.disk is None
        service.allocate(request_from_payload(_payload()))
        assert "decision_cache.disk_hits" not in service.metrics()

    def test_distinct_requests_do_not_cross_hit(self, tmp_path,
                                                service_factory):
        first = service_factory(cache_dir=tmp_path)
        first.allocate(request_from_payload(_payload()))

        fresh = service_factory(cache_dir=tmp_path)
        other = _payload()
        other["applications"][0]["work"] = 3e9  # a genuinely new request
        assert not fresh.allocate(request_from_payload(other)).cache_hit


class TestMetricsKeyStability:
    """The committed key list is an interface: names never change."""

    def test_committed_keys_still_exported(self, service_factory):
        committed = set(_KEYS_FILE.read_text().split())
        assert committed, "metrics_keys.txt must not be empty"
        live = set(service_factory().metrics())
        missing = committed - live
        assert not missing, (
            f"/metrics keys disappeared or were renamed: {sorted(missing)} — "
            "these names are a scrape-time interface; add new keys instead")

    def test_disk_tier_only_adds_keys(self, tmp_path, service_factory):
        committed = set(_KEYS_FILE.read_text().split())
        live = set(service_factory(cache_dir=tmp_path).metrics())
        assert committed <= live
        assert live - committed == {
            "decision_cache.disk_hits",
            "decision_cache.disk_entries",
            "decision_cache.disk_bytes",
        }
