"""Tests for the discrete-event co-execution engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Application, Schedule, Workload, get_scheduler
from repro.machine import taihulight
from repro.simulate import simulate_schedule
from repro.types import ModelError


@pytest.fixture
def pf():
    return taihulight()


class TestStaticPolicy:
    def test_matches_model_perfectly_parallel(self, npb6_pp, pf):
        s = get_scheduler("dominant-minratio")(npb6_pp, pf, None)
        res = simulate_schedule(s)
        assert np.allclose(res.finish_times, s.times(), rtol=1e-12)
        assert res.makespan == pytest.approx(s.makespan())

    def test_matches_model_amdahl(self, synth16, pf):
        s = get_scheduler("fair")(synth16, pf, None)
        res = simulate_schedule(s)
        assert np.allclose(res.finish_times, s.times(), rtol=1e-9)

    def test_event_log_ordering(self, synth16, pf):
        s = get_scheduler("dominant-minratio")(synth16, pf, None)
        res = simulate_schedule(s)
        times = [t for t, _, _ in res.events]
        assert times == sorted(times)
        done = [i for _, kind, i in res.events if kind == "done"]
        assert sorted(done) == list(range(16))

    def test_seq_phase_before_done(self, pf):
        wl = Workload([Application(name="x", work=1e9, seq_fraction=0.3,
                                   access_freq=0.5, miss_rate=0.01)])
        s = Schedule(wl, pf, np.array([float(pf.p)]), np.array([1.0]))
        res = simulate_schedule(s)
        kinds = [k for _, k, _ in res.events]
        assert kinds == ["seq-done", "done"]
        # the sequential phase takes s*w*factor time units
        seq_done_t = res.events[0][0]
        assert seq_done_t == pytest.approx(0.3 * s.times()[0] * pf.p
                                           / (0.3 * pf.p + 0.7), rel=1e-9)

    def test_peak_processors(self, synth16, pf):
        s = get_scheduler("dominant-minratio")(synth16, pf, None)
        res = simulate_schedule(s)
        assert res.peak_processors == pytest.approx(s.procs.sum())

    def test_usage_tracked_and_non_increasing_under_static(self, synth16, pf):
        """Regression: peak_processors is derived from the actual
        usage timeline, not frozen at the initial sum.  Under the
        static policy usage can only drop as applications finish."""
        s = get_scheduler("fair")(synth16, pf, None)  # staggered finishes
        res = simulate_schedule(s, policy="static")
        usage = [used for _, used in res.processor_usage]
        assert usage, "usage timeline must not be empty"
        assert all(a >= b - 1e-9 for a, b in zip(usage, usage[1:]))
        assert res.peak_processors == pytest.approx(usage[0])
        assert res.peak_processors == pytest.approx(float(s.procs.sum()))
        # fair's finishes are staggered, so usage really does drop
        assert usage[-1] < usage[0]

    def test_usage_timeline_ordered(self, synth16, pf):
        s = get_scheduler("fair")(synth16, pf, None)
        res = simulate_schedule(s)
        times = [t for t, _ in res.processor_usage]
        assert times == sorted(times)
        assert times[0] == 0.0

    def test_unknown_policy(self, synth16, pf):
        s = get_scheduler("0cache")(synth16, pf, None)
        with pytest.raises(ModelError):
            simulate_schedule(s, policy="greedy")


class TestWorkConserving:
    def test_never_worse_than_static(self, synth16, pf):
        for name in ("fair", "dominant-minratio", "0cache"):
            s = get_scheduler(name)(synth16, pf, None)
            static = simulate_schedule(s, policy="static")
            wc = simulate_schedule(s, policy="work-conserving")
            assert wc.makespan <= static.makespan * (1 + 1e-9), name

    def test_gains_on_unbalanced_schedule(self, pf):
        """Two equal apps, lopsided processors: reallocation helps."""
        wl = Workload([
            Application(name="a", work=1e9, access_freq=0.5, miss_rate=0.01),
            Application(name="b", work=1e9, access_freq=0.5, miss_rate=0.01),
        ])
        s = Schedule(wl, pf, np.array([200.0, 56.0]), np.zeros(2))
        static = simulate_schedule(s, policy="static")
        wc = simulate_schedule(s, policy="work-conserving")
        assert wc.makespan < static.makespan * 0.99

    def test_noop_on_equal_finish(self, synth16, pf):
        """Equal-finish schedules leave nothing for reallocation."""
        s = get_scheduler("dominant-minratio")(synth16, pf, None)
        static = simulate_schedule(s, policy="static")
        wc = simulate_schedule(s, policy="work-conserving")
        assert wc.makespan == pytest.approx(static.makespan, rel=1e-9)

    def test_property_never_later_across_seeds_and_schedulers(self, pf):
        """Property sweep: over many random instances and *every*
        registered concurrent strategy, the work-conserving policy
        never finishes later than the static one — per application,
        not just on the makespan (extra processors can only help)."""
        from repro.core import scheduler_names
        from repro.workloads import npb_synth, random_workload

        checked = 0
        for seed in range(5):
            rng = np.random.default_rng(seed)
            wl = (npb_synth if seed % 2 else random_workload)(6, rng)
            for name in scheduler_names():
                s = get_scheduler(name)(wl, pf, np.random.default_rng(seed))
                if not s.concurrent:
                    continue
                static = simulate_schedule(s, policy="static")
                wc = simulate_schedule(s, policy="work-conserving")
                slack = 1 + 1e-9
                assert wc.makespan <= static.makespan * slack, (seed, name)
                assert np.all(wc.finish_times
                              <= static.finish_times * slack), (seed, name)
                checked += 1
        assert checked >= 40  # the sweep actually covered the registry

    def test_work_conserving_respects_processor_budget(self, synth16, pf):
        """Redistribution moves processors around but never mints new
        ones: peak usage equals the schedule's total allocation."""
        s = get_scheduler("fair")(synth16, pf, None)
        wc = simulate_schedule(s, policy="work-conserving")
        assert wc.peak_processors <= float(s.procs.sum()) * (1 + 1e-9)

    def test_usage_constant_until_last_finish(self, synth16, pf):
        """Work-conserving redistribution keeps the in-use total at
        the schedule's sum until the final completion."""
        s = get_scheduler("fair")(synth16, pf, None)
        wc = simulate_schedule(s, policy="work-conserving")
        total = float(s.procs.sum())
        for _, used in wc.processor_usage:
            assert used == pytest.approx(total, rel=1e-9)
