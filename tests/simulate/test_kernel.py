"""Tests for the shared discrete-event kernel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulate.kernel import (
    ABS_TOL,
    EVENT_KINDS,
    REL_TOL,
    Event,
    EventLog,
    at_or_before,
    boundary_tol,
    run_phase_kernel,
    run_queue_kernel,
)
from repro.types import ModelError


class TestTolerance:
    def test_combined_form(self):
        assert boundary_tol(0.0) == ABS_TOL
        assert boundary_tol(1e9) == ABS_TOL + REL_TOL * 1e9
        assert boundary_tol(-1e9) == boundary_tol(1e9)

    def test_absolute_floor_at_zero(self):
        """The historical relative-only check admitted nothing at
        t == 0; the combined tolerance keeps a floor there."""
        assert at_or_before(ABS_TOL / 2, 0.0)
        assert not at_or_before(10 * ABS_TOL, 0.0)

    def test_relative_part_scales(self):
        t = 1e9
        assert at_or_before(t * (1 + REL_TOL / 2), t)
        assert not at_or_before(t * (1 + 10 * REL_TOL), t)

    def test_vectorized(self):
        values = np.array([0.0, 5e-13, 1.0])
        out = at_or_before(values, 0.0)
        assert list(out) == [True, True, False]

    def test_explicit_scale(self):
        # boundary 0 but magnitudes of order 1e9: rel part applies,
        # tol = ABS + REL * 1e9 ~ 1e-3
        assert at_or_before(5e-4, 0.0, scale=1e9)
        assert not at_or_before(5e-3, 0.0, scale=1e9)


class TestEventLog:
    def test_typed_records(self):
        log = EventLog()
        e = log.record(1.5, "done", 3)
        assert e == Event(1.5, "done", 3)
        assert log.as_tuples() == [(1.5, "done", 3)]

    def test_select_and_filtered_tuples(self):
        log = EventLog()
        log.record(1.0, "seq-done", 0)
        log.record(2.0, "arrival", 1)
        log.record(3.0, "done", 0)
        assert [e.kind for e in log.select("seq-done", "done")] == [
            "seq-done", "done"]
        assert log.as_tuples("arrival") == [(2.0, "arrival", 1)]
        assert len(log) == 3

    def test_unknown_kind_rejected(self):
        with pytest.raises(ModelError):
            EventLog().record(0.0, "meteor", 0)

    def test_select_rejects_unknown_kind(self):
        """A filter naming a kind outside EVENT_KINDS is a typo, not an
        empty result."""
        log = EventLog()
        log.record(1.0, "done", 0)
        with pytest.raises(ModelError, match="unknown event kind"):
            log.select("dne")
        with pytest.raises(ModelError, match="unknown event kind"):
            log.as_tuples("crashh")

    def test_fault_kinds_registered(self):
        """The chaos subsystem's kinds are first-class log citizens."""
        log = EventLog()
        for kind in ("proc_join", "proc_leave", "crash", "restart", "preempt"):
            assert kind in EVENT_KINDS
            log.record(1.0, kind, -1)
        assert [e.kind for e in log.select("crash", "restart")] == [
            "crash", "restart"]
        # Appended after the original four: the queue kernel's
        # chronological merge keys on tuple position.
        assert EVENT_KINDS.index("proc_join") > EVENT_KINDS.index("drop")

    def test_since_is_incremental(self):
        log = EventLog()
        log.record(1.0, "done", 0)
        cursor = len(log)
        log.record(2.0, "done", 1)
        assert [e.index for e in log.since(cursor)] == [1]
        assert log.since(len(log)) == []


def _fixed_allocation(procs, factors):
    def allocate(now, active, seq_left, par_left):
        return procs, factors
    return allocate


class TestPhaseKernel:
    def test_single_phase_job(self):
        work = np.array([10.0])
        res = run_phase_kernel(
            work, np.zeros(1), work.copy(),
            allocate=_fixed_allocation(np.array([2.0]), np.array([1.0])),
        )
        # 10 ops at 2 ops/time-unit
        assert res.finish_times[0] == pytest.approx(5.0)
        assert [e.kind for e in res.log] == ["done"]
        assert res.events == 1

    def test_two_phase_job_logs_seq_done(self):
        work = np.array([10.0])
        res = run_phase_kernel(
            work, np.array([4.0]), np.array([6.0]),
            allocate=_fixed_allocation(np.array([3.0]), np.array([1.0])),
        )
        # seq: 4 ops at 1/1; par: 6 ops at 3/1
        assert res.finish_times[0] == pytest.approx(4.0 + 2.0)
        assert [e.kind for e in res.log] == ["seq-done", "done"]
        assert res.log.events[0].time == pytest.approx(4.0)

    def test_arrival_admission_and_idle_jump(self):
        work = np.array([4.0, 4.0])
        res = run_phase_kernel(
            work, np.zeros(2), work.copy(),
            allocate=_fixed_allocation(np.array([1.0, 1.0]), np.ones(2)),
            arrivals=np.array([1.0, 100.0]),
        )
        assert res.finish_times[0] == pytest.approx(5.0)
        assert res.finish_times[1] == pytest.approx(104.0)
        kinds = [e.kind for e in res.log]
        assert kinds == ["arrival", "done", "arrival", "done"]

    def test_stalled_application_waits(self):
        """An active application allocated no processors makes no
        progress (the fcfs convention)."""
        work = np.array([4.0, 4.0])

        def allocate(now, active, seq_left, par_left):
            procs = np.zeros(2)
            procs[int(np.flatnonzero(active)[0])] = 1.0
            return procs, np.ones(2)

        res = run_phase_kernel(work, np.zeros(2), work.copy(),
                               allocate=allocate)
        assert res.finish_times[0] == pytest.approx(4.0)
        assert res.finish_times[1] == pytest.approx(8.0)

    def test_on_complete_hook_sees_survivors(self):
        seen = []
        work = np.array([2.0, 4.0])

        def on_complete(i, now, alive):
            seen.append((i, now, alive.copy()))

        res = run_phase_kernel(
            work, np.zeros(2), work.copy(),
            allocate=_fixed_allocation(np.ones(2), np.ones(2)),
            on_complete=on_complete,
        )
        assert [i for i, _, _ in seen] == [0, 1]
        assert list(seen[0][2]) == [False, True]
        assert list(seen[1][2]) == [False, False]
        assert res.events == 2

    def test_event_budget(self):
        work = np.array([4.0])
        with pytest.raises(ModelError, match="my budget message"):
            run_phase_kernel(
                work, np.zeros(1), work.copy(),
                allocate=_fixed_allocation(np.ones(1), np.ones(1)),
                arrivals=np.array([3.0]),
                max_events=1,
                budget_message="my budget message",
            )

    def test_usage_samples(self):
        work = np.array([2.0, 4.0])
        res = run_phase_kernel(
            work, np.zeros(2), work.copy(),
            allocate=_fixed_allocation(np.array([3.0, 1.0]), np.ones(2)),
        )
        # app 0 (2 ops at rate 3) finishes at 2/3; app 1 runs on alone
        assert res.usage == [(0.0, 4.0), (2.0 / 3.0, 1.0)]

    def test_phase_residue_swallowed(self):
        """A residue below tol(work) is rounding noise, not a phase."""
        work = np.array([1e12])
        seq = np.array([0.3 * 1e12])
        res = run_phase_kernel(
            work, seq, work - seq,
            allocate=_fixed_allocation(np.array([7.0]), np.array([1.3])),
        )
        # exactly one seq-done and one done, no zero-length phantom events
        assert [e.kind for e in res.log] == ["seq-done", "done"]


class TestTimelineHook:
    def test_allocate_runs_at_exogenous_instants(self):
        """The clock never steps across timeline(now) while work is in
        flight, so allocate observes every exogenous breakpoint."""
        breakpoints = iter([3.0, 7.0, np.inf])
        nxt = [3.0]

        def timeline(now):
            while at_or_before(nxt[0], now):
                nxt[0] = next(breakpoints)
            return nxt[0]

        seen = []

        def allocate(now, active, seq_left, par_left):
            seen.append(now)
            return np.array([1.0]), np.array([1.0])

        res = run_phase_kernel(
            np.array([10.0]), np.zeros(1), np.array([10.0]),
            allocate=allocate, timeline=timeline,
        )
        assert res.finish_times[0] == pytest.approx(10.0)
        assert seen[0] == 0.0
        assert 3.0 in [pytest.approx(t) for t in seen]
        assert 7.0 in [pytest.approx(t) for t in seen]

    def test_stall_without_any_advance_raises(self):
        """All-stalled work with no arrival and no exogenous event is a
        modeling error, not a NaN factory."""

        def allocate(now, active, seq_left, par_left):
            return np.zeros(1), np.ones(1)

        with pytest.raises(ModelError, match="stalled"):
            run_phase_kernel(
                np.array([10.0]), np.zeros(1), np.array([10.0]),
                allocate=allocate,
            )

    def test_exogenous_event_unstalls(self):
        """A timeline instant can wake a run that is momentarily
        all-stalled (the chaos injector's crash outages rely on it)."""

        def timeline(now):
            return 5.0 if now < 5.0 else np.inf

        def allocate(now, active, seq_left, par_left):
            if now < 5.0:
                return np.zeros(1), np.ones(1)
            return np.array([1.0]), np.array([1.0])

        res = run_phase_kernel(
            np.array([10.0]), np.zeros(1), np.array([10.0]),
            allocate=allocate, timeline=timeline,
        )
        assert res.finish_times[0] == pytest.approx(15.0)


class TestQueueKernel:
    def test_back_to_back(self):
        res = run_queue_kernel([0.0, 0.0, 0.0], [2.0, 3.0, 1.0])
        assert np.array_equal(res.starts, [0.0, 2.0, 5.0])
        assert np.array_equal(res.finishes, [2.0, 5.0, 6.0])
        assert np.array_equal(res.latencies, [2.0, 5.0, 6.0])
        # at the third arrival only batch 1 is admitted-but-unstarted
        # (batch 0 started at the arrival instant itself)
        assert res.dropped == 0 and res.max_depth == 1

    def test_latency_is_exact_not_accumulated(self):
        """Absolute-time bookkeeping: an idle gap does not smear fp
        error into later latencies."""
        res = run_queue_kernel([0.0, 10.0], [1.0, 2.0])
        assert res.latencies[1] == 2.0  # exactly

    def test_finite_buffer_drops(self):
        res = run_queue_kernel([0.0, 0.1, 0.2], [10.0, 10.0, 10.0],
                               buffer_capacity=1)
        assert res.dropped == 1
        assert [e.kind for e in res.log.select("drop")] == ["drop"]

    def test_log_is_chronological(self):
        """A completion postdating later arrivals is merged into the
        log in time order, with completions before same-instant
        admissions."""
        res = run_queue_kernel([0.0, 1.0, 2.0, 10.0], [10.0, 1.0, 1.0, 1.0])
        times = [e.time for e in res.log]
        assert times == sorted(times)
        at_ten = [e.kind for e in res.log if e.time == 10.0]
        assert at_ten == ["done", "arrival"]

    def test_arrival_at_service_boundary_admitted(self):
        """A batch arriving exactly when the server frees is not
        counted against the buffer (canonical tolerance)."""
        res = run_queue_kernel([0.0, 2.0], [2.0, 1.0], buffer_capacity=0)
        assert res.dropped == 0
        assert np.array_equal(res.starts, [0.0, 2.0])
