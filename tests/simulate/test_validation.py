"""Tests for model-vs-simulation validation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import get_scheduler
from repro.machine import taihulight
from repro.simulate import validate_schedule, work_conserving_gain


@pytest.fixture
def pf():
    return taihulight()


class TestValidate:
    def test_all_schedulers_agree_with_model(self, synth16, pf):
        rng = np.random.default_rng(0)
        for name in ("dominant-minratio", "dominantrev-maxratio", "fair",
                      "0cache", "randompart"):
            s = get_scheduler(name)(synth16, pf, rng)
            rep = validate_schedule(s)
            assert rep.agrees, f"{name}: err={rep.max_relative_error}"

    def test_report_fields(self, synth16, pf):
        s = get_scheduler("fair")(synth16, pf, None)
        rep = validate_schedule(s)
        assert rep.model_times.shape == (16,)
        assert rep.simulated_times.shape == (16,)
        assert rep.max_relative_error >= 0


class TestWorkConservingGain:
    def test_zero_for_equal_finish(self, synth16, pf):
        s = get_scheduler("dominant-minratio")(synth16, pf, None)
        gain, _ = work_conserving_gain(s)
        assert gain == pytest.approx(0.0, abs=1e-9)

    def test_positive_for_fair(self, synth16, pf):
        """Fair wastes processors on early finishers; reclaiming helps."""
        s = get_scheduler("fair")(synth16, pf, None)
        gain, result = work_conserving_gain(s)
        assert gain > 0.05
        assert result.policy == "work-conserving"
