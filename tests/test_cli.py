"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_args(self):
        args = build_parser().parse_args(["figure", "fig3", "--reps", "2"])
        assert args.figure_id == "fig3"
        assert args.reps == 2

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "dominant-minratio" in out
        assert "fig18" in out
        assert "npb-synth" in out

    def test_schedule(self, capsys):
        assert main(["schedule", "--napps", "4", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out

    def test_schedule_every_dataset(self, capsys):
        for dataset in ("npb-6", "npb-synth", "random"):
            assert main(["schedule", "--dataset", dataset, "--napps", "4"]) == 0

    def test_figure_runs_small(self, capsys, monkeypatch):
        import numpy as np

        import repro.cli as cli

        # Shrink the sweep so the test is fast.
        orig = cli.build_figure

        def small(figure_id, **kw):
            return orig(figure_id, points=np.array([2.0, 4.0]), **kw)

        monkeypatch.setattr(cli, "build_figure", small)
        assert main(["figure", "fig3", "--reps", "1", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out
        assert "legend:" in out

    def test_figure_csv(self, tmp_path, monkeypatch, capsys):
        import numpy as np

        import repro.cli as cli

        orig = cli.build_figure
        monkeypatch.setattr(
            cli, "build_figure",
            lambda fid, **kw: orig(fid, points=np.array([2.0]), **kw),
        )
        csv_path = tmp_path / "fig1.csv"
        assert main(["figure", "fig1", "--reps", "1", "--csv", str(csv_path)]) == 0
        assert csv_path.exists()
        header = csv_path.read_text().splitlines()[0]
        assert "dominant-minratio" in header

    def test_cluster(self, capsys):
        assert main(["cluster", "--napps", "8", "--nodes", "2"]) == 0
        out = capsys.readouterr().out
        assert "lpt-refined" in out and "node 0" in out

    def test_pipeline(self, capsys):
        assert main(["pipeline", "--napps", "6"]) == 0
        out = capsys.readouterr().out
        assert "min period" in out and "dominant-minratio" in out

    def test_validate(self, capsys):
        assert main(["validate", "--napps", "6"]) == 0
        out = capsys.readouterr().out
        assert "ok" in out and "MISMATCH" not in out

    def test_figure_custom_normalization(self, monkeypatch, capsys):
        import numpy as np

        import repro.cli as cli

        orig = cli.build_figure
        monkeypatch.setattr(
            cli, "build_figure",
            lambda fid, **kw: orig(fid, points=np.array([2.0]), **kw),
        )
        assert main(["figure", "fig3", "--reps", "1", "--normalize", "0cache"]) == 0
        assert "normalized by 0cache" in capsys.readouterr().out
