"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        import repro

        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_serve_args(self):
        args = build_parser().parse_args(
            ["serve", "--port", "9000", "--max-batch", "8",
             "--max-wait-ms", "5", "--cache-capacity", "64"])
        assert args.port == 9000 and args.max_batch == 8
        assert args.max_wait_ms == 5.0 and args.cache_capacity == 64

    def test_request_args(self):
        args = build_parser().parse_args(
            ["request", "--url", "http://h:1", "--napps", "4",
             "--scheduler", "fair", "--repeat", "3"])
        assert args.url == "http://h:1" and args.repeat == 3

    def test_cache_prune_args(self):
        args = build_parser().parse_args(
            ["cache", "prune", "--max-bytes", "500M", "--dry-run"])
        assert args.cache_command == "prune"
        assert args.max_bytes == 500_000_000
        assert args.dry_run

    def test_cache_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache"])


class TestParseBytes:
    @pytest.mark.parametrize("text, expected", [
        ("1024", 1024),
        ("500M", 500_000_000),
        ("500MB", 500_000_000),
        ("2G", 2_000_000_000),
        ("1.5K", 1500),
        ("0", 0),
    ])
    def test_accepted(self, text, expected):
        from repro.cli import parse_bytes

        assert parse_bytes(text) == expected

    @pytest.mark.parametrize("text", ["abc", "12Q", "-5", "", "inf", "nan"])
    def test_rejected(self, text):
        import argparse

        from repro.cli import parse_bytes

        with pytest.raises(argparse.ArgumentTypeError):
            parse_bytes(text)

    def test_figure_args(self):
        args = build_parser().parse_args(["figure", "fig3", "--reps", "2"])
        assert args.figure_id == "fig3"
        assert args.reps == 2

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "dominant-minratio" in out
        assert "fig18" in out
        assert "npb-synth" in out

    def test_schedule(self, capsys):
        assert main(["schedule", "--napps", "4", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out

    def test_schedule_every_dataset(self, capsys):
        for dataset in ("npb-6", "npb-synth", "random"):
            assert main(["schedule", "--dataset", dataset, "--napps", "4"]) == 0

    def test_figure_runs_small(self, capsys, monkeypatch):
        import numpy as np

        import repro.cli as cli

        # Shrink the sweep so the test is fast.
        orig = cli.build_figure

        def small(figure_id, **kw):
            return orig(figure_id, points=np.array([2.0, 4.0]), **kw)

        monkeypatch.setattr(cli, "build_figure", small)
        assert main(["figure", "fig3", "--reps", "1", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out
        assert "legend:" in out

    def test_figure_csv(self, tmp_path, monkeypatch, capsys):
        import numpy as np

        import repro.cli as cli

        orig = cli.build_figure
        monkeypatch.setattr(
            cli, "build_figure",
            lambda fid, **kw: orig(fid, points=np.array([2.0]), **kw),
        )
        csv_path = tmp_path / "fig1.csv"
        assert main(["figure", "fig1", "--reps", "1", "--csv", str(csv_path)]) == 0
        assert csv_path.exists()
        header = csv_path.read_text().splitlines()[0]
        assert "dominant-minratio" in header

    def test_cluster(self, capsys):
        assert main(["cluster", "--napps", "8", "--nodes", "2"]) == 0
        out = capsys.readouterr().out
        assert "lpt-refined" in out and "node 0" in out

    def test_pipeline(self, capsys):
        assert main(["pipeline", "--napps", "6"]) == 0
        out = capsys.readouterr().out
        assert "min period" in out and "dominant-minratio" in out

    def test_validate(self, capsys):
        assert main(["validate", "--napps", "6"]) == 0
        out = capsys.readouterr().out
        assert "ok" in out and "MISMATCH" not in out

    def test_list_schedulers_sorted(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        table = out.split("figures:")[0]
        names = [line.split()[0] for line in table.splitlines()[3:] if line.strip()]
        assert names == sorted(names)
        assert len(names) >= 10

    def test_cache_info_and_prune(self, tmp_path, capsys):
        (tmp_path / "figx-aaaa.npz").write_bytes(b"\0" * 100)
        assert main(["cache", "info", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "1 entries, 100 bytes" in out
        assert main(["cache", "prune", "--max-bytes", "50", "--dry-run",
                     "--cache-dir", str(tmp_path)]) == 0
        assert "would delete 1" in capsys.readouterr().out
        assert (tmp_path / "figx-aaaa.npz").exists()  # dry run deletes nothing
        assert main(["cache", "prune", "--max-bytes", "50",
                     "--cache-dir", str(tmp_path)]) == 0
        assert "deleted 1 entries, freed 100" in capsys.readouterr().out
        assert not (tmp_path / "figx-aaaa.npz").exists()

    def test_cache_without_directory_fails(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["cache", "info"]) == 2
        assert "REPRO_CACHE_DIR" in capsys.readouterr().err

    def test_request_against_live_server(self, capsys):
        import threading

        from repro.service import DecisionService, make_server

        service = DecisionService(max_wait_ms=0.5, workers=2)
        server = make_server("127.0.0.1", 0, service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            url = f"http://{host}:{port}"
            assert main(["request", "--url", url, "--napps", "4",
                         "--repeat", "2"]) == 0
            captured = capsys.readouterr()
            assert "makespan" in captured.out
            assert "decision-cache hit" in captured.err
        finally:
            server.shutdown()
            server.server_close()
            service.close()
            thread.join(timeout=5)

    def test_request_unreachable_server(self):
        from repro.types import ReproError

        with pytest.raises(ReproError, match="cannot reach"):
            main(["request", "--url", "http://127.0.0.1:1", "--napps", "2"])

    def test_figure_custom_normalization(self, monkeypatch, capsys):
        import numpy as np

        import repro.cli as cli

        orig = cli.build_figure
        monkeypatch.setattr(
            cli, "build_figure",
            lambda fid, **kw: orig(fid, points=np.array([2.0]), **kw),
        )
        assert main(["figure", "fig3", "--reps", "1", "--normalize", "0cache"]) == 0
        assert "normalized by 0cache" in capsys.readouterr().out


class TestOnlineCommand:
    def test_online_args(self):
        args = build_parser().parse_args(
            ["online", "--napps", "8", "--policy", "fair",
             "--arrivals", "poisson:rate=5e-9", "--seed", "3"])
        assert args.napps == 8 and args.policy == "fair"
        assert args.arrivals == "poisson:rate=5e-9" and args.seed == 3

    def test_online_batch_default(self, capsys):
        assert main(["online", "--napps", "4"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out and "mean flow" in out and "events" in out

    def test_online_poisson_reproducible(self, capsys):
        """The acceptance scenario: a seeded Poisson arrival stream
        runs end to end and replays bit-identically from --seed."""
        argv = ["online", "--napps", "6", "--policy", "dominant",
                "--arrivals", "poisson:rate=5e-9,burst=0.5,period=1e9",
                "--seed", "11"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first
        assert main(argv[:-1] + ["12"]) == 0
        assert capsys.readouterr().out != first

    def test_online_trace_replay(self, tmp_path, capsys):
        trace = tmp_path / "arrivals.txt"
        trace.write_text("0\n1e8\n2e8\n3e8\n")
        assert main(["online", "--napps", "4",
                     "--arrivals", f"trace:{trace}"]) == 0
        out = capsys.readouterr().out
        assert "3e+08" in out or "3.0000e+08" in out

    def test_online_bad_spec_errors(self):
        import pytest as _pytest

        from repro.types import ModelError

        with _pytest.raises(ModelError):
            main(["online", "--napps", "4", "--arrivals", "storm:heavy"])
