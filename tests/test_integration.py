"""Cross-module integration tests: the paper's headline claims.

These tests assert the *shapes* the evaluation section reports, at
reduced repetition counts — the benchmark harness regenerates the full
figures.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import get_scheduler
from repro.experiments import build_figure, run_experiment
from repro.machine import taihulight
from repro.simulate import validate_schedule
from repro.workloads import npb_synth


class TestHeadlineClaims:
    def test_fig1_85_percent_gain_at_scale(self):
        """Fig. 1: >= ~85% gain over AllProcCache once n >= 50."""
        exp = build_figure("fig1", reps=3, points=np.array([64.0, 128.0]))
        res = run_experiment(exp)
        norm = res.normalized(by="allproccache")
        for name in res.schedulers:
            if name == "allproccache":
                continue
            assert norm[name][0] < 0.25, name   # n = 64
            assert norm[name][1] < 0.15, name   # n = 128

    def test_fig1_six_heuristics_similar(self):
        """Fig. 1: the six variants are within a few percent of each other."""
        exp = build_figure("fig1", reps=3, points=np.array([64.0]))
        res = run_experiment(exp)
        spans = [res.mean(n)[0] for n in res.schedulers if n != "allproccache"]
        assert max(spans) / min(spans) < 1.1

    def test_fig3_ranking(self):
        """Fig. 3: DominantMinRatio < RandomPart/0cache < Fair at n=128."""
        exp = build_figure("fig3", reps=5, points=np.array([128.0]))
        res = run_experiment(exp)
        norm = res.normalized(by="dominant-minratio")
        assert norm["randompart"][0] > 1.0
        assert norm["0cache"][0] > 1.0
        assert norm["fair"][0] > norm["0cache"][0]

    def test_fig5_cache_allocation_gain_over_0cache(self):
        """Fig. 5: clever cache allocation buys > 20% vs 0cache."""
        exp = build_figure("fig5", reps=5, points=np.array([256.0]))
        res = run_experiment(exp)
        norm = res.normalized(by="dominant-minratio")
        assert norm["0cache"][0] > 1.2

    def test_fig6_fair_approaches_dominant_as_s_grows(self):
        """Fig. 6: Fair gets closer to DominantMinRatio at larger s."""
        exp = build_figure("fig6", reps=5, points=np.array([0.01, 0.15]))
        res = run_experiment(exp)
        norm = res.normalized(by="dominant-minratio")
        assert norm["fair"][1] < norm["fair"][0]

    def test_fig6_coscheduling_gain_even_at_tiny_s(self):
        """Fig. 6's surprise: > 50% gain vs AllProcCache at s = 0.01."""
        exp = build_figure("fig6", reps=5, points=np.array([0.01]))
        res = run_experiment(exp)
        norm = res.normalized(by="allproccache")
        assert norm["dominant-minratio"][0] < 0.55

    def test_fig2_choice_function_ranking(self):
        """Fig. 2: Dominant+MinRatio ~ DominantRev+MaxRatio best;
        Dominant+MaxRatio ~ DominantRev+MinRatio worst (high miss rate,
        1 GB LLC)."""
        exp = build_figure("fig2", reps=8, points=np.array([0.6]))
        res = run_experiment(exp)
        norm = res.normalized(by="dominant-minratio")
        good = max(norm["dominant-minratio"][0], norm["dominantrev-maxratio"][0])
        bad = min(norm["dominant-maxratio"][0], norm["dominantrev-minratio"][0])
        assert bad >= good * 0.999

    def test_fig7_spread_shrinks_with_napps(self):
        """Fig. 7: per-app allocation spread decreases as n grows."""
        exp = build_figure("fig7", reps=3, points=np.array([8.0, 128.0]))
        res = run_experiment(exp)
        spread = (res.mean("dominant-minratio", "proc_max")
                  - res.mean("dominant-minratio", "proc_min"))
        assert spread[1] < spread[0]


class TestModelSimulationAgreement:
    def test_every_paper_strategy_simulates_correctly(self):
        pf = taihulight()
        wl = npb_synth(32, np.random.default_rng(0))
        rng = np.random.default_rng(1)
        for name in ("dominant-minratio", "dominant-maxratio", "dominant-random",
                      "dominantrev-minratio", "dominantrev-maxratio",
                      "dominantrev-random", "fair", "0cache", "randompart"):
            sched = get_scheduler(name)(wl, pf, rng)
            assert validate_schedule(sched).agrees, name


class TestEndToEndPipeline:
    def test_trace_to_schedule(self):
        """Full path: synthetic traces -> profiling -> co-schedule."""
        from repro.cachesim import profile_application, zipf_stream
        from repro.core import Workload
        from repro.machine import xeon_e5_2690

        rng = np.random.default_rng(0)
        apps = []
        for i, skew in enumerate((1.1, 1.3, 1.6)):
            trace = zipf_stream(60_000, 40_000, rng, skew=skew)
            app, _, _ = profile_application(
                f"kern{i}", trace, work=float(10 ** (9 + i)),
                operations_per_access=2.0, seq_fraction=0.05,
            )
            apps.append(app)
        wl = Workload(apps)
        pf = xeon_e5_2690()
        dom = get_scheduler("dominant-minratio")(wl, pf, None)
        apc = get_scheduler("allproccache")(wl, pf, None)
        assert dom.is_feasible()
        assert dom.makespan() < apc.makespan()
