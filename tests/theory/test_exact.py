"""Tests for the exhaustive exact solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import dominant_schedule, get_scheduler
from repro.machine import small_llc, taihulight
from repro.theory import best_subset_schedule, exact_optimal_schedule, iter_subsets
from repro.types import ModelError
from repro.workloads import npb_synth


@pytest.fixture
def pf():
    return taihulight()


class TestIterSubsets:
    def test_counts(self):
        assert sum(1 for _ in iter_subsets(4)) == 16

    def test_includes_empty_and_full(self):
        masks = list(iter_subsets(3))
        assert any(not m.any() for m in masks)
        assert any(m.all() for m in masks)

    def test_size_limit(self):
        with pytest.raises(ModelError):
            list(iter_subsets(21))


class TestExactSolver:
    def test_npb6_optimum_is_dominant(self, npb6_pp, pf):
        res = exact_optimal_schedule(npb6_pp, pf)
        assert res.dominant
        assert res.evaluated == 64

    def test_heuristic_matches_exact_on_npb6(self, npb6_pp, pf):
        res = exact_optimal_schedule(npb6_pp, pf)
        h = dominant_schedule(npb6_pp, pf, strategy="dominant", choice="minratio")
        assert h.makespan() == pytest.approx(res.makespan, rel=1e-9)

    def test_heuristics_near_optimal_small_instances(self, pf):
        """Optimality gap of DominantMinRatio on random small instances."""
        for seed in range(8):
            wl = npb_synth(8, np.random.default_rng(seed), seq_range=None)
            res = exact_optimal_schedule(wl, pf)
            h = dominant_schedule(wl, pf, strategy="dominant", choice="minratio")
            gap = h.makespan() / res.makespan - 1
            assert gap <= 1e-6, f"seed {seed}: gap {gap}"

    def test_gap_can_exist_under_pressure(self):
        """On a tiny LLC with high miss rates the greedy can be beaten
        (or match) - either way exact is a valid lower bound."""
        pf = small_llc(p=16.0)
        found_gap = False
        for seed in range(20):
            wl = npb_synth(9, np.random.default_rng(seed),
                           seq_range=None).with_miss_rate(0.6)
            res = exact_optimal_schedule(wl, pf)
            h = dominant_schedule(wl, pf, strategy="dominant", choice="minratio")
            assert h.makespan() >= res.makespan * (1 - 1e-9)
            if h.makespan() > res.makespan * (1 + 1e-9):
                found_gap = True
        # The greedy is a heuristic, not exact; some instance shows a gap.
        assert found_gap

    def test_requires_perfectly_parallel(self, synth16, pf):
        with pytest.raises(ModelError):
            exact_optimal_schedule(synth16[:8], pf)

    def test_requires_infinite_footprint(self, pf):
        from repro.core import Application, Workload

        wl = Workload([Application(name="x", work=1e9, access_freq=0.5,
                                   miss_rate=0.01, footprint=1e6)])
        with pytest.raises(ModelError):
            exact_optimal_schedule(wl, pf)

    def test_best_subset_amdahl(self, pf, rng):
        """For Amdahl apps, best_subset lower-bounds every heuristic."""
        wl = npb_synth(8, rng)
        res = best_subset_schedule(wl, pf)
        for name in ("dominant-minratio", "dominantrev-maxratio", "0cache"):
            h = get_scheduler(name)(wl, pf, np.random.default_rng(0))
            assert h.makespan() >= res.makespan * (1 - 1e-9), name
