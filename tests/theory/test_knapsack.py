"""Tests for the knapsack instance type and exact solvers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.theory import KnapsackInstance, decide, solve_bruteforce, solve_dp
from repro.types import ModelError


def _inst(**kw):
    base = dict(sizes=(3, 4, 5), values=(4, 5, 6), capacity=7, target=9)
    base.update(kw)
    return KnapsackInstance(**base)


class TestInstance:
    def test_valid(self):
        inst = _inst()
        assert inst.n == 3

    @pytest.mark.parametrize("kw", [
        dict(sizes=(3, 4)),                  # length mismatch
        dict(sizes=()),                      # empty (with values=())
        dict(sizes=(0, 4, 5)),               # non-positive size
        dict(values=(4, -5, 6)),             # non-positive value
        dict(capacity=0),
        dict(target=0),
        dict(sizes=(3.5, 4, 5)),             # non-integer
    ])
    def test_rejects_invalid(self, kw):
        if kw.get("sizes") == ():
            kw["values"] = ()
        with pytest.raises(ModelError):
            _inst(**kw)

    def test_evaluate(self):
        inst = _inst()
        assert inst.evaluate([0, 2]) == (8, 10)

    def test_certificate_check(self):
        inst = _inst()
        assert inst.is_yes_certificate([0, 1])       # size 7 <= 7, value 9 >= 9
        assert not inst.is_yes_certificate([0, 2])   # size 8 > 7
        assert not inst.is_yes_certificate([0])      # value 4 < 9


class TestSolvers:
    def test_dp_simple_yes(self):
        value, subset = solve_dp(_inst())
        assert value == 9
        assert _inst().is_yes_certificate(subset)

    def test_dp_witness_is_valid(self):
        inst = KnapsackInstance(sizes=(2, 3, 4, 5), values=(3, 4, 5, 8),
                                capacity=9, target=12)
        value, subset = solve_dp(inst)
        total_u, total_v = inst.evaluate(subset)
        assert total_u <= inst.capacity
        assert total_v == value

    def test_oversized_item_ignored(self):
        inst = KnapsackInstance(sizes=(100, 2), values=(1000, 3), capacity=5, target=3)
        value, subset = solve_dp(inst)
        assert value == 3
        assert subset == frozenset({1})

    def test_decide_no(self):
        inst = KnapsackInstance(sizes=(5, 5), values=(3, 3), capacity=4, target=3)
        assert decide(inst)[0] is False

    def test_bruteforce_limit(self):
        inst = KnapsackInstance(sizes=tuple([1] * 25), values=tuple([1] * 25),
                                capacity=5, target=5)
        with pytest.raises(ModelError):
            solve_bruteforce(inst)

    def test_decide_unknown_method(self):
        with pytest.raises(ModelError):
            decide(_inst(), method="magic")

    @given(seed=st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=50, deadline=None)
    def test_dp_matches_bruteforce(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 9))
        sizes = tuple(int(v) for v in rng.integers(1, 12, size=n))
        values = tuple(int(v) for v in rng.integers(1, 15, size=n))
        capacity = int(rng.integers(1, 30))
        inst = KnapsackInstance(sizes=sizes, values=values, capacity=capacity, target=1)
        v_dp, s_dp = solve_dp(inst)
        v_bf, s_bf = solve_bruteforce(inst)
        assert v_dp == v_bf
        # Witnesses may differ but must both be optimal and feasible.
        assert inst.evaluate(s_dp)[0] <= capacity
        assert inst.evaluate(s_dp)[1] == v_dp
