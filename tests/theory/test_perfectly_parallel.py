"""Tests for the Section 4 structural results (Lemmas 1-3, Theorem 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Schedule
from repro.core.dominance import is_dominant
from repro.machine import taihulight
from repro.theory import (
    equalize_finish_times,
    improve_non_dominant,
    iterate_to_dominant,
    lemma2_schedule,
)
from repro.types import ModelError


@pytest.fixture
def pf():
    return taihulight()


class TestEqualize:
    def test_never_worse(self, synth16_pp, pf, rng):
        """Lemma 1: equalizing finish times cannot increase the makespan."""
        for _ in range(10):
            raw = rng.random(16) + 0.05
            procs = pf.p * raw / raw.sum()
            x = np.zeros(16)
            before = Schedule(synth16_pp, pf, procs, x)
            after = equalize_finish_times(before)
            assert after.makespan() <= before.makespan() * (1 + 1e-12)
            assert after.finish_time_spread() < 1e-9

    def test_preserves_budget(self, synth16_pp, pf, rng):
        raw = rng.random(16) + 0.05
        procs = 0.5 * pf.p * raw / raw.sum()  # only half the machine
        before = Schedule(synth16_pp, pf, procs, np.zeros(16))
        after = equalize_finish_times(before)
        assert after.procs.sum() == pytest.approx(before.procs.sum())

    def test_requires_perfectly_parallel(self, synth16, pf):
        s = Schedule(synth16, pf, np.full(16, pf.p / 16), np.zeros(16))
        with pytest.raises(ModelError):
            equalize_finish_times(s)


class TestLemma2Schedule:
    def test_matches_closed_form(self, npb6_pp, pf):
        x = np.full(6, 1 / 6)
        s = lemma2_schedule(npb6_pp, pf, x)
        assert s.finish_time_spread() < 1e-9
        assert s.procs.sum() == pytest.approx(pf.p)


class TestTheorem2:
    def _non_dominant_start(self, workload, pf):
        mask = np.ones(workload.n, dtype=bool)
        if is_dominant(workload, pf, mask):
            pytest.skip("workload is dominant in full; no improvement to test")
        return mask

    def test_improvement_step_removes_violator(self, rng):
        from repro.machine import small_llc
        from repro.workloads import npb_synth

        pf = small_llc()
        wl = npb_synth(64, rng, seq_range=None).with_miss_rate(0.5)
        mask = self._non_dominant_start(wl, pf)
        new_mask = improve_non_dominant(wl, pf, mask)
        assert new_mask.sum() == mask.sum() - 1

    def test_improve_dominant_raises(self, npb6_pp, pf):
        mask = np.ones(6, dtype=bool)
        assert is_dominant(npb6_pp, pf, mask)
        with pytest.raises(ModelError):
            improve_non_dominant(npb6_pp, pf, mask)

    def test_iterate_reaches_dominance_with_monotone_makespan(self, pf, rng):
        from repro.workloads import npb_synth

        wl = npb_synth(96, rng, seq_range=None)
        mask, trajectory = iterate_to_dominant(wl, pf, np.ones(96, dtype=bool))
        assert is_dominant(wl, pf, mask)
        diffs = np.diff(trajectory)
        assert np.all(diffs <= 1e-9 * trajectory[0])

    def test_iterate_on_small_llc(self, rng):
        """On a tiny LLC most apps must be evicted - stress the loop."""
        from repro.machine import small_llc
        from repro.workloads import npb_synth

        pf = small_llc()
        wl = npb_synth(128, rng, seq_range=None).with_miss_rate(0.5)
        mask, trajectory = iterate_to_dominant(wl, pf, np.ones(128, dtype=bool))
        assert is_dominant(wl, pf, mask)
        assert len(trajectory) >= 2  # at least one eviction happened
