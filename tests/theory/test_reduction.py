"""Tests for the Theorem-1 reduction (Knapsack -> CoSchedCache)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.theory import (
    KnapsackInstance,
    certificate_to_fractions,
    decide,
    decide_reduced,
    fractions_to_certificate,
    reduce_knapsack,
)
from repro.types import ModelError

YES_INSTANCE = KnapsackInstance(sizes=(3, 4, 5, 2), values=(6, 7, 8, 3),
                                capacity=9, target=15)
NO_INSTANCE = KnapsackInstance(sizes=(5, 5, 5), values=(4, 4, 4),
                               capacity=9, target=12)


class TestConstruction:
    def test_constants(self):
        red = reduce_knapsack(YES_INSTANCE)
        n, U = YES_INSTANCE.n, YES_INSTANCE.capacity
        N = max(n, 2 * U + 1)
        assert red.eps == pytest.approx(1.0 / (N * (N + 1)))
        assert red.eta == pytest.approx(1.0 - 1.0 / N)

    def test_applications_perfectly_parallel(self):
        red = reduce_knapsack(YES_INSTANCE)
        assert red.workload.is_perfectly_parallel

    def test_miss_coefficients_match_d(self):
        red = reduce_knapsack(YES_INSTANCE, alpha=0.5)
        d = red.workload.miss_coefficients(red.platform)
        u = np.asarray(YES_INSTANCE.sizes, dtype=float)
        expected = (u * red.eta / YES_INSTANCE.capacity) ** 0.5
        assert np.allclose(d, expected)

    def test_footprints_encode_e(self):
        red = reduce_knapsack(YES_INSTANCE, alpha=0.5)
        d_root = (np.asarray(YES_INSTANCE.sizes, dtype=float)
                  * red.eta / YES_INSTANCE.capacity)
        e_root = d_root + red.eps
        assert np.allclose(red.workload.footprint / red.platform.cache_size, e_root)

    def test_rejects_oversized_items(self):
        inst = KnapsackInstance(sizes=(20,), values=(5,), capacity=9, target=5)
        with pytest.raises(ModelError):
            reduce_knapsack(inst)


class TestForwardDirection:
    def test_yes_certificate_accepted(self):
        answer, witness = decide(YES_INSTANCE)
        assert answer
        red = reduce_knapsack(YES_INSTANCE)
        x = certificate_to_fractions(red, witness)
        assert x.sum() <= 1 + 1e-12
        assert red.accepts(x)

    def test_fractions_respect_footprints(self):
        _, witness = decide(YES_INSTANCE)
        red = reduce_knapsack(YES_INSTANCE)
        x = certificate_to_fractions(red, witness)
        caps = red.workload.footprint / red.platform.cache_size
        assert np.all(x <= caps + 1e-15)

    def test_bad_index_rejected(self):
        red = reduce_knapsack(YES_INSTANCE)
        with pytest.raises(ModelError):
            certificate_to_fractions(red, [99])


class TestBackwardDirection:
    def test_witness_subset_is_knapsack_certificate(self):
        red = reduce_knapsack(YES_INSTANCE)
        answer, x = decide_reduced(red)
        assert answer and x is not None
        subset = fractions_to_certificate(red, x)
        assert YES_INSTANCE.is_yes_certificate(subset)

    def test_no_instance_rejected(self):
        red = reduce_knapsack(NO_INSTANCE)
        answer, x = decide_reduced(red)
        assert not answer and x is None


class TestEquivalence:
    @given(seed=st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=25, deadline=None)
    def test_random_instances_agree(self, seed):
        """decide(I1) == decide_reduced(reduce(I1)) on random instances."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 6))
        capacity = int(rng.integers(3, 12))
        sizes = tuple(int(v) for v in rng.integers(1, capacity + 1, size=n))
        values = tuple(int(v) for v in rng.integers(1, 10, size=n))
        # Pick a target near the achievable optimum so both answers occur.
        from repro.theory import solve_dp

        best, _ = solve_dp(
            KnapsackInstance(sizes=sizes, values=values, capacity=capacity, target=1)
        )
        target = max(1, best + int(rng.integers(-2, 3)))
        inst = KnapsackInstance(sizes=sizes, values=values,
                                capacity=capacity, target=target)
        expected = decide(inst)[0]
        red = reduce_knapsack(inst)
        got = decide_reduced(red)[0]
        assert got == expected

    def test_alpha_variants(self):
        """The construction works for any alpha in (0, 1]."""
        for alpha in (0.3, 0.5, 0.7, 1.0):
            red = reduce_knapsack(YES_INSTANCE, alpha=alpha)
            assert decide_reduced(red)[0]
            red_no = reduce_knapsack(NO_INSTANCE, alpha=alpha)
            assert not decide_reduced(red_no)[0]
