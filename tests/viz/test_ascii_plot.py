"""Tests for the ASCII plotting helper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.types import ModelError
from repro.viz import ascii_plot


class TestAsciiPlot:
    def test_basic_render(self):
        x = np.array([1.0, 2.0, 3.0])
        out = ascii_plot(x, {"up": x, "down": x[::-1]}, title="demo")
        assert "demo" in out
        assert "legend:" in out
        assert "o=up" in out and "x=down" in out

    def test_glyphs_placed(self):
        x = np.array([0.0, 1.0])
        out = ascii_plot(x, {"s": np.array([0.0, 1.0])}, width=20, height=5)
        grid = out.split("legend:")[0]
        assert grid.count("o") >= 2

    def test_logx(self):
        x = np.array([1.0, 10.0, 100.0])
        out = ascii_plot(x, {"s": x}, logx=True, xlabel="n")
        assert "log10 n" in out

    def test_logx_rejects_nonpositive(self):
        with pytest.raises(ModelError):
            ascii_plot(np.array([0.0, 1.0]), {"s": np.array([1.0, 2.0])}, logx=True)

    def test_constant_series_ok(self):
        x = np.array([1.0, 2.0])
        out = ascii_plot(x, {"flat": np.array([3.0, 3.0])})
        assert "flat" in out

    def test_nan_points_skipped(self):
        x = np.array([1.0, 2.0])
        out = ascii_plot(x, {"s": np.array([np.nan, 1.0])})
        grid = out.split("legend:")[0]
        assert grid.count("o") == 1

    def test_all_nan_rejected(self):
        with pytest.raises(ModelError):
            ascii_plot(np.array([1.0]), {"s": np.array([np.nan])})

    def test_length_mismatch(self):
        with pytest.raises(ModelError):
            ascii_plot(np.array([1.0, 2.0]), {"s": np.array([1.0])})

    def test_empty_series_rejected(self):
        with pytest.raises(ModelError):
            ascii_plot(np.array([1.0]), {})

    def test_too_many_series(self):
        x = np.array([1.0])
        series = {f"s{i}": np.array([float(i)]) for i in range(11)}
        with pytest.raises(ModelError):
            ascii_plot(x, series)
