"""Test subpackage (keeps module basenames unique for pytest collection)."""
