"""Tests for the measured NPB constants."""

from __future__ import annotations

import math

import pytest

from repro.core import BASELINE_CACHE_BYTES
from repro.workloads import NPB_DESCRIPTIONS, NPB_TABLE2, npb6_workload_data, npb_application


class TestTable2Constants:
    def test_six_benchmarks(self):
        assert set(NPB_TABLE2) == {"CG", "BT", "LU", "SP", "MG", "FT"}
        assert set(NPB_DESCRIPTIONS) == set(NPB_TABLE2)

    def test_cg_values_verbatim(self):
        w, f, m = NPB_TABLE2["CG"]
        assert w == 5.70e10
        assert f == 5.35e-01
        assert m == 6.59e-04

    def test_all_values_in_range(self):
        for name, (w, f, m) in NPB_TABLE2.items():
            assert w > 0, name
            assert 0 < f < 1, name
            assert 0 < m < 0.05, name  # "rarely exceeds a few percent"


class TestNpbApplication:
    def test_builds_from_table(self):
        app = npb_application("CG")
        assert app.work == 5.70e10
        assert app.access_freq == 0.535
        assert app.miss_rate == 6.59e-4
        assert app.baseline_cache == BASELINE_CACHE_BYTES
        assert math.isinf(app.footprint)
        assert app.is_perfectly_parallel

    def test_case_insensitive(self):
        assert npb_application("cg").name == "CG"

    def test_overrides(self):
        app = npb_application("FT", seq_fraction=0.1, work=1e9, footprint=1e8)
        assert app.seq_fraction == 0.1
        assert app.work == 1e9
        assert app.footprint == 1e8

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            npb_application("XX")

    def test_npb6_order(self):
        apps = npb6_workload_data()
        assert [a.name for a in apps] == ["CG", "BT", "LU", "SP", "MG", "FT"]
