"""Tests for JSON workload/platform specs."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.core import Application, Platform, Workload
from repro.machine import taihulight
from repro.types import ModelError
from repro.workloads import (
    application_from_dict,
    application_to_dict,
    load_spec,
    npb6,
    platform_from_dict,
    platform_to_dict,
    save_spec,
)


class TestApplicationDict:
    def test_roundtrip(self):
        app = Application(name="T", work=1e9, seq_fraction=0.1,
                          access_freq=0.5, miss_rate=0.01, footprint=1e8)
        assert application_from_dict(application_to_dict(app)) == app

    def test_infinite_footprint_encodes_null(self):
        app = Application(name="T", work=1e9)
        d = application_to_dict(app)
        assert d["footprint"] is None
        back = application_from_dict(d)
        assert math.isinf(back.footprint)

    def test_missing_key(self):
        with pytest.raises(ModelError):
            application_from_dict({"name": "T"})

    def test_defaults_applied(self):
        app = application_from_dict({"name": "T", "work": 1e9})
        assert app.seq_fraction == 0.0
        assert app.baseline_cache == 40e6


class TestPlatformDict:
    def test_roundtrip(self):
        pf = taihulight()
        assert platform_from_dict(platform_to_dict(pf)) == pf

    def test_missing_key(self):
        with pytest.raises(ModelError):
            platform_from_dict({"p": 4})


class TestSpecFiles:
    def test_roundtrip(self, tmp_path):
        wl = npb6(seq_range=None)
        pf = taihulight()
        path = tmp_path / "spec.json"
        save_spec(path, wl, pf)
        wl2, pf2 = load_spec(path)
        assert pf2 == pf
        assert wl2.names == wl.names
        assert np.allclose(wl2.work, wl.work)
        assert np.allclose(wl2.miss0, wl.miss0)

    def test_file_is_valid_json(self, tmp_path):
        path = tmp_path / "spec.json"
        save_spec(path, npb6(seq_range=None), taihulight())
        doc = json.loads(path.read_text())
        assert len(doc["applications"]) == 6

    def test_rejects_non_spec(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"foo": 1}))
        with pytest.raises(ModelError):
            load_spec(path)

    def test_schedulable_after_roundtrip(self, tmp_path):
        from repro.core import dominant_schedule

        path = tmp_path / "spec.json"
        save_spec(path, npb6(seq_range=None), taihulight())
        wl, pf = load_spec(path)
        assert dominant_schedule(wl, pf).is_feasible()
