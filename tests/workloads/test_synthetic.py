"""Tests for the synthetic workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.types import ModelError
from repro.workloads import (
    NPB_TABLE2,
    SEQ_RANGE,
    WORK_RANGE,
    generate,
    npb6,
    npb_synth,
    random_workload,
)


class TestNpb6:
    def test_perfectly_parallel_variant(self):
        wl = npb6(seq_range=None)
        assert wl.is_perfectly_parallel
        assert wl.n == 6

    def test_amdahl_variant(self, rng):
        wl = npb6(rng=rng)
        assert np.all(wl.seq >= SEQ_RANGE[0])
        assert np.all(wl.seq <= SEQ_RANGE[1])

    def test_preserves_table2(self, rng):
        wl = npb6(rng=rng)
        for app in wl:
            w, f, m = NPB_TABLE2[app.name]
            assert app.work == w
            assert app.access_freq == f
            assert app.miss_rate == m


class TestNpbSynth:
    def test_sizes(self, rng):
        assert npb_synth(10, rng).n == 10

    def test_work_in_range(self, rng):
        wl = npb_synth(200, rng)
        assert np.all(wl.work >= WORK_RANGE[0])
        assert np.all(wl.work <= WORK_RANGE[1])

    def test_profiles_come_from_table2(self, rng):
        wl = npb_synth(50, rng)
        valid_freqs = {f for (_, f, _) in NPB_TABLE2.values()}
        assert set(np.round(wl.freq, 10)) <= {round(f, 10) for f in valid_freqs}

    def test_seq_range_none_is_perfectly_parallel(self, rng):
        assert npb_synth(8, rng, seq_range=None).is_perfectly_parallel

    def test_reproducible(self):
        a = npb_synth(8, np.random.default_rng(42))
        b = npb_synth(8, np.random.default_rng(42))
        assert np.allclose(a.work, b.work)
        assert np.allclose(a.seq, b.seq)

    def test_rejects_zero(self, rng):
        with pytest.raises(ModelError):
            npb_synth(0, rng)


class TestRandomWorkload:
    def test_parameter_ranges(self, rng):
        wl = random_workload(100, rng)
        assert np.all((wl.freq >= 0.1) & (wl.freq <= 0.9))
        assert np.all((wl.miss0 >= 9e-4) & (wl.miss0 <= 9e-2))
        assert np.all((wl.work >= 1e8) & (wl.work <= 1e12))

    def test_custom_ranges(self, rng):
        wl = random_workload(20, rng, freq_range=(0.5, 0.6))
        assert np.all((wl.freq >= 0.5) & (wl.freq <= 0.6))

    def test_rejects_zero(self, rng):
        with pytest.raises(ModelError):
            random_workload(0, rng)


class TestGenerate:
    def test_by_name(self, rng):
        assert generate("npb-synth", 5, rng).n == 5
        assert generate("random", 5, rng).n == 5
        assert generate("npb-6", 6, rng).n == 6

    def test_npb6_truncation(self, rng):
        assert generate("npb-6", 3, rng).n == 3

    def test_npb6_too_many(self, rng):
        with pytest.raises(ModelError):
            generate("npb-6", 7, rng)

    def test_unknown_dataset(self, rng):
        with pytest.raises(ModelError):
            generate("mystery", 5, rng)
